package index

import (
	"fmt"
	"sort"
	"time"

	"xmatch/internal/xmltree"
)

// Snapshot is the persistable form of an Index: the region encodings and
// value keys with no node pointers. internal/store serializes it as a
// versioned blob; FromSnapshot re-binds it to a live document, verifying
// every posting against the document so a stale or corrupted blob is
// rejected instead of silently mis-answering queries.
type Snapshot struct {
	// DocNodes is the node count of the document the index was built over.
	DocNodes int
	// Paths holds one entry per indexed dotted path, sorted by path.
	Paths []SnapshotPath
	// Values holds one entry per (path, text) value key, sorted.
	Values []SnapshotValue
}

// SnapshotPath is the persisted postings list of one dotted path.
type SnapshotPath struct {
	Path                 string
	Starts, Ends, Levels []int32
}

// SnapshotValue is the persisted postings list of one value key. Region
// data is not repeated: the starts identify nodes already described by the
// path postings.
type SnapshotValue struct {
	Path, Text string
	Starts     []int32
}

// Snapshot extracts the persistable form of the index. Entries are sorted,
// so two snapshots of the same index serialize to identical bytes. An
// overlay epoch is materialized first, so the snapshot of a mutated
// index is indistinguishable from that of a fresh build over the same
// document.
func (ix *Index) Snapshot() *Snapshot {
	pathMap, valueMap := ix.materialize()
	snap := &Snapshot{DocNodes: ix.doc.Len()}
	pathNames := make([]string, 0, len(pathMap))
	for p := range pathMap {
		pathNames = append(pathNames, p)
	}
	sort.Strings(pathNames)
	for _, path := range pathNames {
		ps := pathMap[path]
		sp := SnapshotPath{
			Path:   path,
			Starts: make([]int32, len(ps)),
			Ends:   make([]int32, len(ps)),
			Levels: make([]int32, len(ps)),
		}
		for i, p := range ps {
			sp.Starts[i], sp.Ends[i], sp.Levels[i] = p.Start, p.End, p.Level
		}
		snap.Paths = append(snap.Paths, sp)
	}
	keys := make([]valueKey, 0, len(valueMap))
	for k := range valueMap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].text < keys[j].text
	})
	for _, k := range keys {
		ps := valueMap[k]
		sv := SnapshotValue{Path: k.path, Text: k.text, Starts: make([]int32, len(ps))}
		for i, p := range ps {
			sv.Starts[i] = p.Start
		}
		snap.Values = append(snap.Values, sv)
	}
	return snap
}

// FromSnapshot re-binds a snapshot to doc, verifying it posting by
// posting: every start must resolve to a document node whose path, region
// encoding, and (for value entries) text agree with the snapshot, postings
// must be in document order, and every document node must be covered
// exactly once. Any disagreement — a corrupted blob, or a blob built over
// a different document — is reported as an error; internal/store wraps it
// as a *FormatError.
func FromSnapshot(doc *xmltree.Document, snap *Snapshot) (*Index, error) {
	start := time.Now()
	if snap.DocNodes != doc.Len() {
		return nil, fmt.Errorf("index snapshot covers %d nodes, document has %d", snap.DocNodes, doc.Len())
	}
	byStart := make(map[int32]*xmltree.Node, doc.Len())
	for _, n := range doc.Nodes() {
		byStart[int32(n.Start)] = n
	}
	ix := &Index{
		doc:    doc,
		paths:  make(map[string][]Posting, len(snap.Paths)),
		values: make(map[valueKey][]Posting, len(snap.Values)),
	}
	total := 0
	for _, sp := range snap.Paths {
		if len(sp.Starts) != len(sp.Ends) || len(sp.Starts) != len(sp.Levels) {
			return nil, fmt.Errorf("index snapshot path %q: region arrays disagree (%d/%d/%d)",
				sp.Path, len(sp.Starts), len(sp.Ends), len(sp.Levels))
		}
		if _, dup := ix.paths[sp.Path]; dup || len(sp.Starts) == 0 {
			return nil, fmt.Errorf("index snapshot path %q: duplicate or empty entry", sp.Path)
		}
		ps := make([]Posting, len(sp.Starts))
		prev := int32(0)
		for i := range sp.Starts {
			n := byStart[sp.Starts[i]]
			if n == nil {
				return nil, fmt.Errorf("index snapshot path %q: start %d resolves to no node", sp.Path, sp.Starts[i])
			}
			if n.Path != sp.Path || int32(n.End) != sp.Ends[i] || int32(n.Level) != sp.Levels[i] {
				return nil, fmt.Errorf("index snapshot path %q: posting %d disagrees with document node (path %q, region %d:%d@%d)",
					sp.Path, i, n.Path, n.Start, n.End, n.Level)
			}
			if sp.Starts[i] <= prev {
				return nil, fmt.Errorf("index snapshot path %q: postings out of document order", sp.Path)
			}
			prev = sp.Starts[i]
			ps[i] = Posting{Start: sp.Starts[i], End: sp.Ends[i], Level: sp.Levels[i], Node: n}
		}
		ix.paths[sp.Path] = ps
		total += len(ps)
	}
	if total != doc.Len() {
		return nil, fmt.Errorf("index snapshot has %d postings, document has %d nodes", total, doc.Len())
	}
	covered := make(map[*xmltree.Node]bool)
	for _, sv := range snap.Values {
		key := valueKey{sv.Path, sv.Text}
		if _, dup := ix.values[key]; dup || len(sv.Starts) == 0 || sv.Text == "" {
			return nil, fmt.Errorf("index snapshot value (%q, %q): duplicate, empty, or textless entry", sv.Path, sv.Text)
		}
		ps := make([]Posting, len(sv.Starts))
		prev := int32(0)
		for i, s := range sv.Starts {
			n := byStart[s]
			if n == nil || n.Path != sv.Path || n.Text != sv.Text {
				return nil, fmt.Errorf("index snapshot value (%q, %q): start %d disagrees with document", sv.Path, sv.Text, s)
			}
			if s <= prev {
				return nil, fmt.Errorf("index snapshot value (%q, %q): postings out of document order", sv.Path, sv.Text)
			}
			prev = s
			ps[i] = Posting{Start: s, End: int32(n.End), Level: int32(n.Level), Node: n}
			covered[n] = true
		}
		ix.values[key] = ps
	}
	// Every text-bearing node must have its value entry, or value-predicate
	// lookups would silently miss matches. Each covered node was verified
	// above to sit under its own (path, text) key.
	for _, n := range doc.Nodes() {
		if n.Text != "" && !covered[n] {
			return nil, fmt.Errorf("index snapshot misses value entry for node %q (%q)", n.Path, n.Text)
		}
	}
	ix.stats = ix.computeStats()
	ix.stats.BuildTime = time.Since(start)
	return ix, nil
}
