package index_test

import (
	"testing"

	"xmatch/internal/index"
	"xmatch/internal/twig"
)

func TestPathProfilesAccumulate(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	p := twig.MustParse(`Order/POLine/Quantity`)
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"}

	if got := ix.PathProfiles(); len(got) != 0 {
		t.Fatalf("fresh index has %d profiles, want 0", len(got))
	}
	if ms := ix.MatchTwig(doc, p.Root, paths); len(ms) != 3 {
		t.Fatalf("matches = %d, want 3", len(ms))
	}
	profiles := ix.PathProfiles()
	byPath := map[string]index.PathProfile{}
	for _, pp := range profiles {
		byPath[pp.Path] = pp
	}
	for _, path := range []string{"PO", "PO.Line", "PO.Line.Qty"} {
		pp, ok := byPath[path]
		if !ok {
			t.Fatalf("no profile for %s in %+v", path, profiles)
		}
		if pp.Evals != 1 || pp.Candidates == 0 {
			t.Fatalf("profile %s = %+v", path, pp)
		}
		if pp.UsefulSurvivors > pp.Candidates || pp.ReachSurvivors > pp.UsefulSurvivors {
			t.Fatalf("profile %s funnel not monotone: %+v", path, pp)
		}
		if pp.Selectivity < 0 || pp.Selectivity > 1 {
			t.Fatalf("profile %s selectivity = %v", path, pp.Selectivity)
		}
	}

	// A memo hit runs no funnel: profiles must not move.
	ix.MatchTwig(doc, p.Root, paths)
	if again := ix.PathProfiles(); len(again) != len(profiles) || again[0] != profiles[0] {
		t.Fatalf("memo hit moved profiles: %+v -> %+v", profiles, again)
	}

	// The single-node fast path counts its candidates as undropped.
	fp := twig.MustParse(`Line`)
	ix.MatchTwig(doc, fp.Root, twig.PathBinding{fp.Root: "PO.Line"})
	pp := map[string]index.PathProfile{}
	for _, x := range ix.PathProfiles() {
		pp[x.Path] = x
	}
	line := pp["PO.Line"]
	if line.Evals != 2 {
		t.Fatalf("PO.Line evals = %d, want 2", line.Evals)
	}
	if line.Selectivity == 0 {
		t.Fatalf("fast-path candidates all dropped: %+v", line)
	}

	// PathStats joins the observed funnel onto the static rows.
	for _, st := range ix.PathStats() {
		if st.Path == "PO.Line.Qty" {
			if st.Evals != 1 || st.Candidates == 0 || st.ObservedSelectivity() < 0 {
				t.Fatalf("PathStats row missing funnel: %+v", st)
			}
		}
		if st.Path == "PO.Line.Num" && st.ObservedSelectivity() != -1 {
			t.Fatalf("never-evaluated path reports selectivity %v", st.ObservedSelectivity())
		}
	}
}

func TestPathProfilesSurviveApplyChanges(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	p := twig.MustParse(`Order/POLine/Quantity`)
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"}
	ix.MatchTwig(doc, p.Root, paths)
	before := ix.PathProfiles()
	if len(before) == 0 {
		t.Fatal("no profiles on base index")
	}

	rev := doc.BeginRevision()
	target := rev.LocateByPath("PO.Line.Qty", 0)
	if target == nil {
		t.Fatal("PO.Line.Qty not found")
	}
	if err := rev.SetText(target.Start, "9"); err != nil {
		t.Fatal(err)
	}
	newDoc, cs := rev.Commit()
	nx := ix.ApplyChanges(newDoc, cs)
	after := nx.PathProfiles()
	if len(after) != len(before) {
		t.Fatalf("overlay lost profiles: %d -> %d", len(before), len(after))
	}
	nx.MatchTwig(newDoc, p.Root, paths)
	var evals uint64
	for _, pp := range nx.PathProfiles() {
		if pp.Path == "PO.Line.Qty" {
			evals = pp.Evals
		}
	}
	if evals != 2 {
		t.Fatalf("PO.Line.Qty evals after overlay eval = %d, want 2", evals)
	}
}
