package index_test

// FuzzMatchTwig is the differential fuzzer of the matching stack: for a
// fuzzer-chosen document, pattern, and binding seed, the holistic indexed
// matcher over *both* postings layouts — block-compressed (index.Build)
// and flat (index.BuildFlat) — the joined evaluator (twig.MatchByPaths),
// and, when the candidate space is small enough, the brute-force oracle
// (twig.NaiveMatchByPaths) must agree. The compressed and flat indexed
// runs and MatchByPaths must agree *exactly*: same matches, same order —
// which pins the compressed decode, the skip-pointer galloping, and the
// result memo against the reference layouts byte for byte. The corpus is
// seeded from the Table III workload patterns over an Order.xml-like
// document, plus adversarial shapes (recursive labels, value predicates,
// absent paths).

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"xmatch/internal/index"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// orderXML is a miniature Order.xml in the shape of the paper's running
// example; the Table III seed patterns resolve against its labels.
const orderXML = `<Order>
  <DeliverTo>
    <Address><City>Leipzig</City><Country>DE</Country><Street>1 Main St</Street></Address>
    <Contact><Name>Alice</Name><EMail>alice@example.com</EMail></Contact>
  </DeliverTo>
  <Buyer><Contact><Name>Bob</Name></Contact></Buyer>
  <POLine><LineNo>1</LineNo><BPID>P-1</BPID><Price><UP>5.00</UP></Price><Quantity>3</Quantity></POLine>
  <POLine><LineNo>2</LineNo><BPID>P-2</BPID><Price><UP>7.50</UP></Price><Quantity>8</Quantity></POLine>
</Order>`

// fuzzBinding derives a path binding for the pattern from the document's
// real path set: each node prefers a path extending its parent's binding
// whose last segment equals its label, then any label match, then a
// seed-chosen arbitrary path (often non-nesting), then an absent path —
// so the corpus mixes productive, empty, and structurally impossible
// bindings.
func fuzzBinding(rng *rand.Rand, doc *xmltree.Document, pat *twig.Pattern) twig.PathBinding {
	paths := doc.Paths()
	binding := make(twig.PathBinding, pat.Size())
	parentPath := make(map[*twig.Node]string)
	var walk func(n *twig.Node)
	walk = func(n *twig.Node) {
		pp, hasParent := parentPath[n]
		var nested, labelled []string
		for _, p := range paths {
			ends := p == n.Label || strings.HasSuffix(p, "."+n.Label)
			if ends {
				labelled = append(labelled, p)
			}
			if hasParent && ends && len(p) > len(pp) && strings.HasPrefix(p, pp+".") {
				nested = append(nested, p)
			}
		}
		var chosen string
		switch {
		case len(nested) > 0 && rng.Intn(6) != 0:
			chosen = nested[rng.Intn(len(nested))]
		case len(labelled) > 0 && rng.Intn(6) != 0:
			chosen = labelled[rng.Intn(len(labelled))]
		case rng.Intn(2) == 0:
			chosen = paths[rng.Intn(len(paths))]
		default:
			chosen = n.Label + ".absent"
		}
		binding[n] = chosen
		for _, c := range n.Children {
			parentPath[c] = chosen
			walk(c)
		}
	}
	walk(pat.Root)
	return binding
}

func FuzzMatchTwig(f *testing.F) {
	seedDoc := orderXML
	for _, q := range []string{
		// The Table III workload (Q1–Q10 shapes).
		"Order/DeliverTo/Address[./City][./Country]/Street",
		"Order/DeliverTo/Contact/EMail",
		"Order/DeliverTo[./Address/City]/Contact/EMail",
		"Order/POLine[./LineNo]//UP",
		"Order/POLine[./LineNo][.//UP]/Quantity",
		"Order/POLine[./BPID][./LineNo][.//UP]/Quantity",
		"Order[./DeliverTo//Street]/POLine[.//BPID][.//UP]/Quantity",
		"Order[./DeliverTo[.//EMail]//Street]/POLine[.//UP]/Quantity",
		"Order[./Buyer/Contact]/POLine[.//BPID]/Quantity",
		"Order[./Buyer/Contact][./DeliverTo//City]//BPID",
		// Value predicates and degenerate shapes.
		`Order/POLine[./LineNo="2"]/Quantity`,
		`Order/POLine/Quantity[.="8"]`,
		"Order",
		"POLine/POLine/POLine",
	} {
		f.Add(seedDoc, q, uint64(1))
		f.Add(seedDoc, q, uint64(42))
	}
	f.Add("<a><a><a><b>x</b></a></a></a>", "a/a/b", uint64(7))
	f.Add("<r><x>v</x><x>v</x><x>w</x></r>", `r[./x="v"]/x`, uint64(9))
	f.Add("<r><x>v</x><x></x></r>", `r/x[.=""]`, uint64(11))

	f.Fuzz(func(t *testing.T, xmlText, patternText string, seed uint64) {
		if len(xmlText) > 1<<14 {
			return
		}
		doc, err := xmltree.ParseString(xmlText)
		if err != nil || doc.Len() > 300 {
			return
		}
		pat, err := twig.Parse(patternText)
		if err != nil || pat.Size() > 8 {
			return
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		binding := fuzzBinding(rng, doc, pat)

		want := twig.MatchByPaths(doc, pat.Root, binding)
		ix := index.Build(doc)
		got := ix.MatchTwig(doc, pat.Root, binding)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("MatchTwig (compressed) diverged from MatchByPaths\npattern %s\nbinding %v\ngot  %v\nwant %v",
				pat, binding, keys(got), keys(want))
		}
		flat := index.BuildFlat(doc)
		gotFlat := flat.MatchTwig(doc, pat.Root, binding)
		if !reflect.DeepEqual(gotFlat, want) {
			t.Fatalf("MatchTwig (flat) diverged from MatchByPaths\npattern %s\nbinding %v\ngot  %v\nwant %v",
				pat, binding, keys(gotFlat), keys(want))
		}

		// The naive oracle enumerates every candidate assignment; only
		// run it when that space is small.
		space := 1
		for _, n := range pat.Nodes() {
			space *= len(doc.NodesByPath(binding[n])) + 1
			if space > 200000 {
				return
			}
		}
		naive := twig.NaiveMatchByPaths(doc, pat.Root, binding)
		if !reflect.DeepEqual(sortedKeys(got), sortedKeys(naive)) {
			t.Fatalf("MatchTwig diverged from the naive oracle\npattern %s\nbinding %v\ngot  %v\nnaive %v",
				pat, binding, sortedKeys(got), sortedKeys(naive))
		}
	})
}
