package index

// Compressed postings. A PostingList is the resident form of one postings
// list — the region encodings of all document nodes sharing one dotted
// path (or one (path, text) value key). Lists come in two representations
// behind one API:
//
//   - compressed: (start, end) pairs are delta-encoded as uvarints in
//     blocks of 64 postings. Gap numbering (xmltree.Gap) multiplies raw
//     start magnitudes 16x, which makes delta encoding *more* attractive,
//     not less: consecutive same-path starts differ by small multiples of
//     the stride, so most pairs fit in a few bytes where the flat layout
//     spends twenty-four. Each block opens with an absolute pair (uvarint
//     start, uvarint extent), so blocks decode independently; blockOff
//     holds one byte offset per block beyond the first — the block-level
//     skip pointers the holistic matcher gallops over. A probe into a
//     long list reads only block-opening varints plus the one block it
//     lands in, leaving the rest undecoded; a single-block list carries
//     no skip structure at all. The level is not stored per posting —
//     every node of one dotted path sits at the same depth, so one level
//     per list suffices.
//
//   - flat: a plain []Posting. Overlay epochs spliced by ApplyChanges stay
//     flat (they are small, short-lived until the next flatten, and the
//     mutate path should not pay an encode), as does an index built with
//     BuildFlat — the reference layout the differential fuzzer compares
//     against.
//
// Node pointers are kept in a parallel array (they cannot be compressed
// and are touched only at emission), so a compressed list costs
// 8 bytes/posting of pointers plus a few bytes of deltas against the flat
// layout's postingBytes.
//
// Invariant: every list is sorted by Start with all starts distinct. Path
// and value lists are additionally *disjoint* interval sequences (two
// nodes with the same path can never nest), which keeps ends sorted like
// starts — what makes End-ordered probes gallopable.

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"xmatch/internal/xmltree"
)

// nextListID hands every compressed list a process-unique cache slot id.
var nextListID atomic.Uint32

const (
	// blockShift sets the compressed block size: 1<<blockShift postings
	// per block. 64 keeps the skip-pointer overhead at one uint32 per 64
	// postings while a probe decodes at most 64 pairs.
	blockShift = 6
	blockSize  = 1 << blockShift
	blockMask  = blockSize - 1
)

// PostingList is one immutable postings list, compressed or flat. The zero
// value is an empty list. Lists are built once (compressPostings,
// newFlatList) and never modified, so any number of goroutines may read
// one concurrently through their own cursors.
type PostingList struct {
	// flat is the uncompressed representation; non-nil means the
	// compressed fields below are unused.
	flat []Posting

	count int
	level int32
	// id slots the list into the matcher's per-state decode cache in O(1)
	// (cache entries verify the list pointer, so collisions only evict).
	id    uint32
	nodes []*xmltree.Node // one per posting, document order

	// blockOff[b-1] is the byte offset of block b's opening pair within
	// data; block 0 starts at offset 0. Nil for single-block lists.
	blockOff []uint32
	data     []byte
}

// newFlatList wraps an already-decoded postings slice. The slice is
// retained; callers hand over ownership.
func newFlatList(ps []Posting) *PostingList {
	if len(ps) == 0 {
		return nil
	}
	return &PostingList{flat: ps, count: len(ps)}
}

// compressPostings encodes ps into the block-compressed representation.
// ps must be sorted by Start with distinct starts and share one level (a
// per-path or per-value-key list always does). The input slice is not
// retained.
func compressPostings(ps []Posting) *PostingList {
	if len(ps) == 0 {
		return nil
	}
	nBlocks := (len(ps) + blockSize - 1) / blockSize
	pl := &PostingList{
		count: len(ps),
		level: ps[0].Level,
		id:    nextListID.Add(1),
		nodes: make([]*xmltree.Node, len(ps)),
	}
	if nBlocks > 1 {
		pl.blockOff = make([]uint32, 0, nBlocks-1)
	}
	var buf [2 * binary.MaxVarintLen32]byte
	data := make([]byte, 0, 4*len(ps))
	for i, p := range ps {
		pl.nodes[i] = p.Node
		var n int
		if i&blockMask == 0 {
			if i > 0 {
				pl.blockOff = append(pl.blockOff, uint32(len(data)))
			}
			n = binary.PutUvarint(buf[:], uint64(p.Start))
		} else {
			n = binary.PutUvarint(buf[:], uint64(p.Start-ps[i-1].Start))
		}
		n += binary.PutUvarint(buf[n:], uint64(p.End-p.Start))
		data = append(data, buf[:n]...)
	}
	// Re-slice to exact length so resident accounting reflects reality.
	pl.data = append(make([]byte, 0, len(data)), data...)
	return pl
}

// Len returns the number of postings.
func (pl *PostingList) Len() int {
	if pl == nil {
		return 0
	}
	return pl.count
}

// compressed reports whether the list is block-compressed.
func (pl *PostingList) compressed() bool { return pl != nil && pl.flat == nil }

// blocks returns the number of blocks of a compressed list.
func (pl *PostingList) blocks() int { return len(pl.blockOff) + 1 }

// blockDataOff returns the byte offset of block b's opening pair.
func (pl *PostingList) blockDataOff(b int) int {
	if b == 0 {
		return 0
	}
	return int(pl.blockOff[b-1])
}

// blockFirstStart reads block b's first start without decoding the block
// — the skip-pointer probe of the galloping seeks.
func (pl *PostingList) blockFirstStart(b int) int32 {
	v, _ := uvarint(pl.data, pl.blockDataOff(b))
	return int32(v)
}

// decodeBlock decodes block b's region numbers into the starts/ends
// arrays and returns the number of postings decoded. Node pointers are
// deliberately not touched: decoding into plain int32 arrays keeps GC
// write barriers out of the merge hot loop, and emission fetches nodes
// straight from pl.nodes. The data is trusted (produced by
// compressPostings or validated by CompactSnapshot.Expand), so the decode
// loop has no error paths.
func (pl *PostingList) decodeBlock(b int, starts, ends *[blockSize]int32) int {
	base := b << blockShift
	n := pl.count - base
	if n > blockSize {
		n = blockSize
	}
	data := pl.data
	off := pl.blockDataOff(b)
	ds, k := uvarint(data, off)
	off += k
	de, k := uvarint(data, off)
	off += k
	start := int32(ds)
	starts[0], ends[0] = start, start+int32(de)
	for i := 1; i < n; i++ {
		ds, k = uvarint(data, off)
		off += k
		de, k = uvarint(data, off)
		off += k
		start += int32(ds)
		starts[i], ends[i] = start, start+int32(de)
	}
	return n
}

// uvarint is binary.Uvarint specialized to resume at an offset without
// re-slicing (the decode hot loop).
func uvarint(data []byte, off int) (uint64, int) {
	var x uint64
	var s uint
	for i := off; i < len(data); i++ {
		b := data[i]
		if b < 0x80 {
			return x | uint64(b)<<s, i - off + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}

// appendAll decodes the whole list onto buf and returns it.
func (pl *PostingList) appendAll(buf []Posting) []Posting {
	return pl.appendRange(buf, 0, pl.Len())
}

// appendRange decodes postings [lo, hi) onto buf and returns it.
func (pl *PostingList) appendRange(buf []Posting, lo, hi int) []Posting {
	if pl == nil || lo >= hi {
		return buf
	}
	if pl.flat != nil {
		return append(buf, pl.flat[lo:hi]...)
	}
	var starts, ends [blockSize]int32
	for b := lo >> blockShift; b<<blockShift < hi; b++ {
		n := pl.decodeBlock(b, &starts, &ends)
		base := b << blockShift
		s, e := 0, n
		if base < lo {
			s = lo - base
		}
		if base+e > hi {
			e = hi - base
		}
		for i := s; i < e; i++ {
			buf = append(buf, Posting{Start: starts[i], End: ends[i], Level: pl.level, Node: pl.nodes[base+i]})
		}
	}
	return buf
}

// residentBytes is the list's actual in-memory footprint (postings data
// only; map-key strings are accounted by the caller).
func (pl *PostingList) residentBytes() int {
	if pl == nil {
		return 0
	}
	if pl.flat != nil {
		return len(pl.flat) * postingBytes
	}
	return len(pl.nodes)*8 + len(pl.data) + len(pl.blockOff)*4
}

// flatBytes is the hypothetical footprint of the same list in the flat
// []Posting layout — the denominator of the compression ratio.
func (pl *PostingList) flatBytes() int { return pl.Len() * postingBytes }

// cursor is a one-block decode window over a PostingList, the unit of
// lazy decoding: sequential scans decode each block exactly once, and
// galloping seeks decode only the block a probe lands in. The window
// holds region numbers only — pointer-free, so decoding is write-barrier
// free — and node pointers are read straight off the list at emission.
// Cursors are cheap to reset and live in pooled matcher state; they must
// not be shared between goroutines.
type cursor struct {
	pl      *PostingList
	blk     int    // decoded block index, -1 when none
	decoded uint64 // blocks decoded since takeDecoded, for the eval tally
	starts  [blockSize]int32
	ends    [blockSize]int32
}

func (c *cursor) reset(pl *PostingList) {
	c.pl = pl
	c.blk = -1
}

// takeDecoded returns and clears the decoded-block count — read once per
// evaluation when the tally flushes.
func (c *cursor) takeDecoded() uint64 {
	n := c.decoded
	c.decoded = 0
	return n
}

// ensure decodes posting i's block into the window.
func (c *cursor) ensure(i int) {
	if b := i >> blockShift; b != c.blk {
		c.pl.decodeBlock(b, &c.starts, &c.ends)
		c.blk = b
		c.decoded++
	}
}

// at returns posting i, node pointer included.
func (c *cursor) at(i int) Posting {
	if c.pl.flat != nil {
		return c.pl.flat[i]
	}
	c.ensure(i)
	return Posting{Start: c.starts[i&blockMask], End: c.ends[i&blockMask], Level: c.pl.level, Node: c.pl.nodes[i]}
}

// startAt and endAt return posting i's region numbers without touching
// the node array — the merge passes' accessors.
func (c *cursor) startAt(i int) int32 {
	if c.pl.flat != nil {
		return c.pl.flat[i].Start
	}
	c.ensure(i)
	return c.starts[i&blockMask]
}

func (c *cursor) endAt(i int) int32 {
	if c.pl.flat != nil {
		return c.pl.flat[i].End
	}
	c.ensure(i)
	return c.ends[i&blockMask]
}

// nodeAt returns posting i's node without decoding any region block.
func (c *cursor) nodeAt(i int) *xmltree.Node {
	if c.pl.flat != nil {
		return c.pl.flat[i].Node
	}
	return c.pl.nodes[i]
}

// seekStartGT returns the smallest index ≥ from whose posting has
// Start > v, galloping block-wise: an exponential probe over the
// block-opening skip pointers (or the flat slice) brackets the target,
// a binary search narrows it to one block, and only that block is
// decoded.
func (c *cursor) seekStartGT(v int32, from int) int {
	n := c.pl.Len()
	if from >= n {
		return n
	}
	if c.pl.flat != nil {
		return from + gallop(len(c.pl.flat)-from, func(i int) bool { return c.pl.flat[from+i].Start > v })
	}
	nb := c.pl.blocks()
	b0 := from >> blockShift
	b := b0 + gallop(nb-b0, func(i int) bool { return c.pl.blockFirstStart(b0+i) > v })
	if b == b0 {
		// from's own block already opens past v, so from qualifies.
		return from
	}
	// The answer lives in block b-1 (every earlier block's postings stay
	// below block b-1's opening start ≤ v) or at block b's boundary.
	lo := (b - 1) << blockShift
	if from > lo {
		lo = from
	}
	hi := b << blockShift
	if hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		if c.startAt(i) > v {
			return i
		}
	}
	return hi
}

// gallop returns the smallest i in [0, n] with ok(i), assuming ok is
// monotone (false… then true). It probes exponentially from 0 — seeks in
// the merge passes are monotone, so the answer is usually near the cursor
// — then binary-searches the bracketed range.
func gallop(n int, ok func(int) bool) int {
	if n <= 0 || ok(0) {
		return 0
	}
	lo, hi := 0, 1
	for hi < n && !ok(hi) {
		lo = hi
		hi <<= 1
	}
	if hi > n {
		hi = n
	}
	// Invariant: !ok(lo), ok(hi) if hi < n.
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if ok(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// postingBufPool recycles posting scratch buffers across evaluations and
// index builds — the "pooled posting buffers" that take the indexed PTQ
// path's per-evaluation allocations out of the hot loop.
var postingBufPool = sync.Pool{
	New: func() any { b := make([]Posting, 0, 256); return &b },
}

func getPostingBuf() *[]Posting {
	return postingBufPool.Get().(*[]Posting)
}

func putPostingBuf(b *[]Posting) {
	*b = (*b)[:0]
	postingBufPool.Put(b)
}
