// Package xmltree provides the XML document substrate used throughout the
// library: an ordered labelled tree with preorder interval numbering, which
// supports constant-time ancestor tests and the sorted node lists required
// by stack-based structural joins (Al-Khalifa et al., ICDE 2002).
//
// Documents can be parsed from XML text (via encoding/xml), built
// programmatically, or generated synthetically. Every node carries the
// dotted label path from the root (e.g. "Order.POLine.Quantity"), matching
// the hash keys used by the block tree of Cheng, Gong and Cheung (ICDE 2010).
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is a single element node of an XML document tree.
type Node struct {
	// Label is the element name.
	Label string
	// Text is the concatenated character data directly inside the
	// element, with surrounding whitespace trimmed.
	Text string
	// Parent is nil for the root.
	Parent *Node
	// Children in document order.
	Children []*Node

	// Start and End delimit the node's preorder interval: a node d is a
	// descendant of a iff a.Start < d.Start && d.End <= a.End. Assigned
	// by Document.renumber.
	Start, End int
	// Level is the depth from the root (root has level 0).
	Level int
	// Path is the dotted label path from the root, e.g. "Order.POLine".
	Path string
}

// Gap is the stride of the interval numbering: renumbering assigns
// consecutive interval boundaries Gap apart, so every pair of adjacent
// boundaries leaves Gap-1 unused integers. Insertions under the revision
// layer (see BeginRevision) allocate numbers from these gaps, which is what
// lets an edit keep every untouched node's Start/End — and therefore every
// untouched index posting — intact. Dense numbering is the Gap = 1 special
// case; all structural invariants (strict preorder ordering, the ancestor
// interval test) are stride-independent.
const Gap = 16

// IsAncestorOf reports whether n is a proper ancestor of d, using the
// preorder interval numbering.
func (n *Node) IsAncestorOf(d *Node) bool {
	return n.Start < d.Start && d.End <= n.End
}

// Contains reports whether d lies in n's subtree (n itself included).
func (n *Node) Contains(d *Node) bool {
	return n == d || n.IsAncestorOf(d)
}

// AddChild appends a child node with the given label and returns it. The
// document must be renumbered (or rebuilt with New) before structural
// queries are issued.
func (n *Node) AddChild(label string) *Node {
	c := &Node{Label: label, Parent: n}
	n.Children = append(n.Children, c)
	return c
}

// AddText sets the node's character data and returns the node, for chaining.
func (n *Node) AddText(text string) *Node {
	n.Text = text
	return n
}

// Document is an XML document with index structures for structural queries.
type Document struct {
	Root *Node

	nodes  []*Node            // preorder
	byPath map[string][]*Node // dotted path -> nodes in preorder

	// base chains the path index of a revision snapshot to its
	// predecessor's: byPath then holds only the entries the revision
	// changed (nil marking a path that disappeared) and lookups fall
	// through the chain. pathDepth bounds the chain; Commit materializes
	// a full map when it grows past maxPathDepth. A parsed or built
	// document has base == nil and a complete byPath.
	base      *Document
	pathDepth int

	// accel is an opaque accelerator attached by a higher layer (the
	// positional index of internal/index); consumers type-assert against
	// their own interfaces. The document never inspects it. See SetAccel.
	accel any

	// numBase offsets the interval numbering: every Start/End the document
	// assigns is strictly greater than numBase. A plain document has
	// numBase 0; members of a sharded collection are numbered at disjoint
	// ascending offsets (see NewAt and Corpus) so their node intervals
	// interleave like one concatenated document. Renumbering — including
	// the whole-document fallback of the revision layer — preserves the
	// base, so a member never drifts into a neighbour's range.
	numBase int
}

// maxPathDepth bounds the byPath overlay chain of revision snapshots.
const maxPathDepth = 12

// SetAccel attaches an opaque accelerator to the document (nil detaches).
// Attachment is not synchronized: it must happen before the document is
// shared with concurrent readers, after which the document — accelerator
// included — is treated as immutable.
func (d *Document) SetAccel(a any) { d.accel = a }

// Accel returns the attached accelerator, or nil.
func (d *Document) Accel() any { return d.accel }

// New builds a Document around root, assigning interval numbers, levels and
// paths to every node and building the path index.
func New(root *Node) *Document {
	return NewAt(root, 0)
}

// NewAt builds a Document like New but numbers every interval boundary
// strictly above base (the first boundary is base+Gap). Collections number
// their member documents at disjoint ascending bases, so the members'
// node intervals — and hence their match keys — order exactly as if the
// members were concatenated into one document. base must be >= 0.
func NewAt(root *Node, base int) *Document {
	d := &Document{Root: root, numBase: base}
	d.renumber()
	return d
}

// NumBase returns the document's numbering base (0 for a plain document).
func (d *Document) NumBase() int { return d.numBase }

// MaxEnd returns the largest interval boundary the document has assigned
// (the root's End), or the numbering base for an empty document. A
// collection places the next member's base at or above this.
func (d *Document) MaxEnd() int {
	if d.Root == nil {
		return d.numBase
	}
	return d.Root.End
}

// NewRoot creates a fresh root node with the given label. Attach children
// with AddChild, then call New to obtain a queryable Document.
func NewRoot(label string) *Node {
	return &Node{Label: label}
}

func (d *Document) renumber() {
	d.nodes = d.nodes[:0]
	d.byPath = make(map[string][]*Node)
	d.base, d.pathDepth = nil, 0
	counter := d.numBase
	var walk func(n *Node, level int, prefix string)
	walk = func(n *Node, level int, prefix string) {
		counter += Gap
		n.Start = counter
		n.Level = level
		if prefix == "" {
			n.Path = n.Label
		} else {
			n.Path = prefix + "." + n.Label
		}
		d.nodes = append(d.nodes, n)
		d.byPath[n.Path] = append(d.byPath[n.Path], n)
		for _, c := range n.Children {
			c.Parent = n
			walk(c, level+1, n.Path)
		}
		counter += Gap
		n.End = counter
	}
	if d.Root != nil {
		walk(d.Root, 0, "")
	}
}

// Len returns the number of element nodes in the document.
func (d *Document) Len() int { return len(d.nodes) }

// Nodes returns all nodes in preorder. The returned slice must not be
// modified.
func (d *Document) Nodes() []*Node { return d.nodes }

// NodesByPath returns the nodes whose dotted label path from the root equals
// path, in document (preorder) order. The returned slice must not be
// modified.
func (d *Document) NodesByPath(path string) []*Node {
	for x := d; x != nil; x = x.base {
		if l, ok := x.byPath[path]; ok {
			return l
		}
	}
	return nil
}

// pathMap materializes the effective path index: the oldest snapshot's
// full map with each overlay applied on top. The returned map is fresh.
func (d *Document) pathMap() map[string][]*Node {
	var chain []*Document
	for x := d; x != nil; x = x.base {
		chain = append(chain, x)
	}
	m := make(map[string][]*Node, len(chain[len(chain)-1].byPath))
	for i := len(chain) - 1; i >= 0; i-- {
		for p, l := range chain[i].byPath {
			if l == nil {
				delete(m, p)
			} else {
				m[p] = l
			}
		}
	}
	return m
}

// Paths returns the distinct dotted paths present in the document, sorted.
func (d *Document) Paths() []string {
	m := d.byPath
	if d.base != nil {
		m = d.pathMap()
	}
	ps := make([]string, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

// Parse reads an XML document from r. Attributes are ignored; character
// data is trimmed and attached to the enclosing element.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: t.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				s := strings.TrimSpace(string(t))
				if s != "" {
					top := stack[len(stack)-1]
					if top.Text != "" {
						top.Text += " "
					}
					top.Text += s
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	return New(root), nil
}

// ParseString parses an XML document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// WriteXML serializes the document as indented XML.
func (d *Document) WriteXML(w io.Writer) error {
	var write func(n *Node, indent string) error
	write = func(n *Node, indent string) error {
		if len(n.Children) == 0 {
			var err error
			if n.Text == "" {
				_, err = fmt.Fprintf(w, "%s<%s/>\n", indent, n.Label)
			} else {
				_, err = fmt.Fprintf(w, "%s<%s>%s</%s>\n", indent, n.Label, escape(n.Text), n.Label)
			}
			return err
		}
		if _, err := fmt.Fprintf(w, "%s<%s>\n", indent, n.Label); err != nil {
			return err
		}
		if n.Text != "" {
			if _, err := fmt.Fprintf(w, "%s  %s\n", indent, escape(n.Text)); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := write(c, indent+"  "); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Label)
		return err
	}
	if d.Root == nil {
		return fmt.Errorf("xmltree: nil root")
	}
	return write(d.Root, "")
}

// String returns the indented XML serialization of the document.
func (d *Document) String() string {
	var b strings.Builder
	if err := d.WriteXML(&b); err != nil {
		return "<error: " + err.Error() + ">"
	}
	return b.String()
}

func escape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// Walk visits every node in preorder, calling fn. If fn returns false the
// node's subtree is skipped.
func (d *Document) Walk(fn func(*Node) bool) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if d.Root != nil {
		walk(d.Root)
	}
}
