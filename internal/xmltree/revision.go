package xmltree

// This file implements the document mutation substrate behind the
// immutable-query API: a Revision is a copy-on-write edit session over one
// Document snapshot. Edits clone only the nodes they touch (the spine from
// the root to the edited node, plus the subtree whose labels, paths, or
// interval numbers change); every other node object — and hence every index
// posting holding a pointer to it — is shared with the base snapshot.
// Commit assembles a fresh Document around the partially-shared tree and
// reports exactly which node objects entered and left the document, which
// is what internal/index needs to splice its postings instead of
// rebuilding.
//
// Interval numbers come from the gaps the stride-Gap numbering leaves
// between existing boundaries (see Gap). An insertion takes numbers from
// the gap between its neighbours; only when a gap is exhausted does the
// revision renumber — and then only the subtree of the nearest ancestor
// with enough slack, cloning that subtree so the base snapshot's numbering
// is untouched. A full-document renumbering happens only when the root
// interval itself runs out of room.
//
// Sharing has one observable consequence, by design: a shared node's
// Parent pointer refers to the node object of the revision in which it was
// created, not necessarily to the object occupying that position in the
// current document. The parent it points at always has the same Start,
// End, Level, Path, and Label as the current occupant — positional
// identity is stable even though object identity is not — so consumers
// that walk Parent chains must key off Start (see core's SLCA) rather
// than node pointers.

import (
	"fmt"
	"sort"
)

// Revision is an in-progress copy-on-write edit batch over a base
// document. It is single-goroutine; the base document is only read. Apply
// edits through InsertSubtree, DeleteSubtree, Rename, and SetText, then
// call Commit for the resulting snapshot. A revision abandoned before
// Commit leaves no trace.
type Revision struct {
	base *Document
	root *Node // current root (cloned lazily)

	owned   map[*Node]bool // nodes created by this revision
	dropped []*Node        // base-snapshot nodes no longer in the document
}

// ChangeSet reports a committed revision's node-level delta: the node
// objects that left the document (deleted nodes, plus originals superseded
// by clones) and those that entered it (clones, plus inserted nodes). A
// node whose position, label, path, and text are all unchanged appears in
// neither list. Added is in the new snapshot's document order; Dropped is
// unordered (consumers treat it as a set).
type ChangeSet struct {
	Dropped []*Node
	Added   []*Node
}

// BeginRevision opens a copy-on-write edit session over the document. The
// document itself is never modified.
func (d *Document) BeginRevision() *Revision {
	return &Revision{base: d, root: d.Root, owned: make(map[*Node]bool)}
}

// clone makes an owned copy of n attached under parent (an owned node, or
// nil for the root), sharing n's children, and records n as dropped.
func (r *Revision) clone(n *Node, parent *Node) *Node {
	c := &Node{
		Label:    n.Label,
		Text:     n.Text,
		Parent:   parent,
		Children: append([]*Node(nil), n.Children...),
		Start:    n.Start,
		End:      n.End,
		Level:    n.Level,
		Path:     n.Path,
	}
	r.owned[c] = true
	r.dropped = append(r.dropped, n)
	return c
}

// childIndex returns the index of the child of p whose interval contains
// start (or whose Start equals it), or -1.
func childIndex(p *Node, start int) int {
	i := sort.Search(len(p.Children), func(i int) bool { return p.Children[i].Start > start }) - 1
	if i >= 0 && start <= p.Children[i].End {
		return i
	}
	return -1
}

// spine returns the chain of current nodes from the root to the node whose
// Start equals start, or nil when no such node exists. Descending by
// interval containment keeps the walk on current objects even where the
// tree shares subtrees with older snapshots.
func (r *Revision) spine(start int) []*Node {
	n := r.root
	if start < n.Start || start > n.End {
		return nil
	}
	chain := []*Node{n}
	for n.Start != start {
		i := childIndex(n, start)
		if i < 0 {
			return nil
		}
		n = n.Children[i]
		chain = append(chain, n)
	}
	if n.Start != start {
		return nil
	}
	return chain
}

// Locate returns the current node with the given preorder start number, or
// nil. The returned node must be treated as read-only.
func (r *Revision) Locate(start int) *Node {
	chain := r.spine(start)
	if chain == nil {
		return nil
	}
	return chain[len(chain)-1]
}

// LocateByPath returns the ordinal-th node (0-based, document order) whose
// dotted label path equals path in the revision's current tree, or nil.
func (r *Revision) LocateByPath(path string, ordinal int) *Node {
	if ordinal < 0 {
		return nil
	}
	var found *Node
	seen := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if found != nil {
			return
		}
		if n.Path == path {
			if seen == ordinal {
				found = n
				return
			}
			seen++
			// A node's path strictly extends its ancestors', so no
			// descendant can share it; descending further is wasted work.
			return
		}
		// Only children whose path could prefix the target are worth
		// visiting: every node's Path extends its parent's by one label.
		for _, c := range n.Children {
			if len(c.Path) <= len(path) && path[:len(c.Path)] == c.Path {
				walk(c)
			}
		}
	}
	walk(r.root)
	return found
}

// own clones every non-owned node along the spine to start, returning the
// chain of owned current nodes root..target, or nil when start resolves to
// no node.
func (r *Revision) own(start int) []*Node {
	chain := r.spine(start)
	if chain == nil {
		return nil
	}
	for i, n := range chain {
		if r.owned[n] {
			continue
		}
		var parent *Node
		if i > 0 {
			parent = chain[i-1]
		}
		c := r.clone(n, parent)
		if parent == nil {
			r.root = c
		} else {
			parent.Children[childIndex(parent, n.Start)] = c
		}
		chain[i] = c
	}
	return chain
}

// ownSubtree makes every node of the subtree rooted at the owned node n
// owned, cloning shared descendants in place.
func (r *Revision) ownSubtree(n *Node) {
	for i, c := range n.Children {
		if !r.owned[c] {
			c = r.clone(c, n)
			n.Children[i] = c
		} else {
			c.Parent = n
		}
		r.ownSubtree(c)
	}
}

// SetText replaces the text of the node with the given start number.
func (r *Revision) SetText(start int, text string) error {
	chain := r.own(start)
	if chain == nil {
		return fmt.Errorf("xmltree: revision: no node with start %d", start)
	}
	chain[len(chain)-1].Text = text
	return nil
}

// Rename replaces the label of the node with the given start number. The
// node's dotted path — and every descendant's — changes with it, so the
// whole subtree is cloned.
func (r *Revision) Rename(start int, label string) error {
	if label == "" {
		return fmt.Errorf("xmltree: revision: empty label")
	}
	chain := r.own(start)
	if chain == nil {
		return fmt.Errorf("xmltree: revision: no node with start %d", start)
	}
	n := chain[len(chain)-1]
	n.Label = label
	r.ownSubtree(n)
	prefix := ""
	if len(chain) > 1 {
		prefix = chain[len(chain)-2].Path
	}
	repath(n, prefix)
	return nil
}

// repath rewrites the dotted paths of an owned subtree below the given
// parent path prefix.
func repath(n *Node, prefix string) {
	if prefix == "" {
		n.Path = n.Label
	} else {
		n.Path = prefix + "." + n.Label
	}
	for _, c := range n.Children {
		repath(c, n.Path)
	}
}

// DeleteSubtree removes the node with the given start number and its
// entire subtree. The root cannot be deleted.
func (r *Revision) DeleteSubtree(start int) error {
	chain := r.spine(start)
	if chain == nil {
		return fmt.Errorf("xmltree: revision: no node with start %d", start)
	}
	if len(chain) == 1 {
		return fmt.Errorf("xmltree: revision: cannot delete the document root")
	}
	// Own the spine up to the parent; the deleted subtree itself needs no
	// clones, only bookkeeping.
	parentChain := r.own(chain[len(chain)-2].Start)
	parent := parentChain[len(parentChain)-1]
	i := childIndex(parent, start)
	target := parent.Children[i]
	parent.Children = append(parent.Children[:i:i], parent.Children[i+1:]...)
	r.dropSubtree(target)
	return nil
}

// dropSubtree records every node of a detached subtree as gone: shared
// nodes are dropped from the document, revision-owned nodes simply cease
// to be additions.
func (r *Revision) dropSubtree(n *Node) {
	if r.owned[n] {
		delete(r.owned, n)
	} else {
		r.dropped = append(r.dropped, n)
	}
	for _, c := range n.Children {
		r.dropSubtree(c)
	}
}

// InsertSubtree inserts a freshly built node tree (for example the root of
// a parsed fragment; it must not belong to any document) as a child of the
// node with the given parent start number, at child position pos (clamped;
// negative appends). The subtree's interval numbers are drawn from the gap
// between its new neighbours; when the gap is too small, the nearest
// enclosing ancestor subtree with enough numbering slack is renumbered.
func (r *Revision) InsertSubtree(parentStart, pos int, sub *Node) error {
	if sub == nil {
		return fmt.Errorf("xmltree: revision: nil subtree")
	}
	chain := r.own(parentStart)
	if chain == nil {
		return fmt.Errorf("xmltree: revision: no node with start %d", parentStart)
	}
	parent := chain[len(chain)-1]
	if pos < 0 || pos > len(parent.Children) {
		pos = len(parent.Children)
	}
	// Adopt the fresh subtree: every node becomes owned, with levels and
	// paths derived from the insertion point. Interval numbers come later.
	var adopt func(n, p *Node)
	adopt = func(n, p *Node) {
		n.Parent = p
		n.Level = p.Level + 1
		if p.Path == "" {
			n.Path = n.Label
		} else {
			n.Path = p.Path + "." + n.Label
		}
		r.owned[n] = true
		for _, c := range n.Children {
			adopt(c, n)
		}
	}
	adopt(sub, parent)
	parent.Children = append(parent.Children[:pos:pos], append([]*Node{sub}, parent.Children[pos:]...)...)

	// Boundaries of the gap the new subtree must fit in.
	lo, hi := parent.Start, parent.End
	if pos > 0 {
		lo = parent.Children[pos-1].End
	}
	if pos+1 < len(parent.Children) {
		hi = parent.Children[pos+1].Start
	}
	m := countNodes(sub)
	if hi-lo-1 >= 2*m {
		numberInto(sub, lo, hi)
		return nil
	}
	r.renumberNear(chain)
	return nil
}

// countNodes returns the number of nodes in the subtree rooted at n.
func countNodes(n *Node) int {
	c := 1
	for _, ch := range n.Children {
		c += countNodes(ch)
	}
	return c
}

// numberInto assigns interval numbers to the subtree rooted at n, spreading
// its 2·m boundaries evenly across the open interval (lo, hi). The caller
// guarantees hi-lo-1 >= 2·m, so consecutive boundaries stay strictly
// increasing.
func numberInto(n *Node, lo, hi int) {
	m := countNodes(n)
	span := hi - lo
	k := 0
	var assign func(x *Node)
	assign = func(x *Node) {
		k++
		x.Start = lo + k*span/(2*m+1)
		for _, c := range x.Children {
			assign(c)
		}
		k++
		x.End = lo + k*span/(2*m+1)
	}
	assign(n)
}

// renumberNear handles gap exhaustion after an insert (the new subtree is
// already attached, so node counts below include it): walking the (owned)
// spine bottom-up, it finds the nearest non-root ancestor whose interval
// still has 2x numbering slack — slack so the next few inserts in the
// same region stay renumbering-free — clones that ancestor's subtree, and
// renumbers it in place. When no ancestor qualifies, the whole document
// is renumbered with fresh stride-Gap boundaries (the root's own End
// moves, which no interval below constrains).
func (r *Revision) renumberNear(chain []*Node) {
	for i := len(chain) - 1; i > 0; i-- {
		a := chain[i]
		desc := countNodes(a) - 1 // boundaries to place: 2 per descendant
		if a.End-a.Start-1 < 4*desc {
			continue
		}
		r.ownSubtree(a)
		renumberChildren(a)
		return
	}
	// Renumber the whole document with fresh gaps, preserving the
	// numbering base so a collection member stays inside its offset range.
	root := chain[0]
	r.ownSubtree(root)
	counter := r.base.numBase
	var assign func(n *Node)
	assign = func(n *Node) {
		counter += Gap
		n.Start = counter
		for _, c := range n.Children {
			assign(c)
		}
		counter += Gap
		n.End = counter
	}
	assign(root)
}

// renumberChildren redistributes the interval numbers of a's descendants
// evenly across a's own (unchanged) interval.
func renumberChildren(a *Node) {
	desc := countNodes(a) - 1
	if desc == 0 {
		return
	}
	span := a.End - a.Start
	k := 0
	var assign func(x *Node)
	assign = func(x *Node) {
		k++
		x.Start = a.Start + k*span/(2*desc+1)
		for _, c := range x.Children {
			assign(c)
		}
		k++
		x.End = a.Start + k*span/(2*desc+1)
	}
	for _, c := range a.Children {
		assign(c)
	}
}

// Commit assembles the revised snapshot: a new Document sharing every
// untouched node with the base, plus the change set internal/index needs
// to splice its postings. The base document and any snapshot published
// from it remain fully usable. Committing a revision twice, or using it
// after Commit, is invalid.
func (r *Revision) Commit() (*Document, *ChangeSet) {
	// The new preorder is a three-way pointer merge: the base snapshot's
	// preorder minus the dropped nodes, interleaved by start number with
	// the owned (added) nodes. Preorder and start order coincide in every
	// snapshot, and edits never reorder surviving shared nodes, so the
	// merge never needs a tree walk — the per-node cost is a pointer
	// comparison, not a hash lookup.
	cs := &ChangeSet{Dropped: r.dropped}
	cs.Added = make([]*Node, 0, len(r.owned))
	for n := range r.owned {
		cs.Added = append(cs.Added, n)
	}
	sort.Slice(cs.Added, func(i, j int) bool { return cs.Added[i].Start < cs.Added[j].Start })
	droppedSorted := append([]*Node(nil), r.dropped...)
	sort.Slice(droppedSorted, func(i, j int) bool { return droppedSorted[i].Start < droppedSorted[j].Start })

	nd := &Document{Root: r.root, numBase: r.base.numBase}
	nd.nodes = make([]*Node, 0, len(r.base.nodes)+len(cs.Added)-len(cs.Dropped))
	ai, di := 0, 0
	for _, n := range r.base.nodes {
		// A clone carries its original's start, so emitting added nodes
		// on strict < keeps each clone in exactly its original's slot.
		for ai < len(cs.Added) && cs.Added[ai].Start < n.Start {
			nd.nodes = append(nd.nodes, cs.Added[ai])
			ai++
		}
		for di < len(droppedSorted) && droppedSorted[di].Start < n.Start {
			di++
		}
		if di < len(droppedSorted) && droppedSorted[di] == n {
			di++
			continue
		}
		nd.nodes = append(nd.nodes, n)
	}
	for ; ai < len(cs.Added); ai++ {
		nd.nodes = append(nd.nodes, cs.Added[ai])
	}

	// The path index becomes an overlay over the base document's: only
	// the affected paths get freshly merged lists (nil marks a path that
	// disappeared); every other lookup falls through the chain. The
	// chain is materialized once it grows past maxPathDepth.
	affected := make(map[string]bool, len(cs.Dropped)+len(cs.Added))
	droppedSet := make(map[*Node]bool, len(cs.Dropped))
	for _, n := range cs.Dropped {
		affected[n.Path] = true
		droppedSet[n] = true
	}
	for _, n := range cs.Added {
		affected[n.Path] = true
	}
	nd.base, nd.pathDepth = r.base, r.base.pathDepth+1
	nd.byPath = make(map[string][]*Node, len(affected))
	for p := range affected {
		var list []*Node
		old := r.base.NodesByPath(p)
		i := 0
		// Merge the surviving old nodes with the added ones by Start; both
		// sequences are in document order.
		for _, n := range cs.Added {
			if n.Path != p {
				continue
			}
			for ; i < len(old); i++ {
				if droppedSet[old[i]] {
					continue
				}
				if old[i].Start > n.Start {
					break
				}
				list = append(list, old[i])
			}
			list = append(list, n)
		}
		for ; i < len(old); i++ {
			if !droppedSet[old[i]] {
				list = append(list, old[i])
			}
		}
		nd.byPath[p] = list // nil when the path disappeared
	}
	if nd.pathDepth >= maxPathDepth {
		nd.byPath, nd.base, nd.pathDepth = nd.pathMap(), nil, 0
	}
	return nd, cs
}
