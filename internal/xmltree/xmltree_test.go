package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const sampleXML = `
<Order>
  <Header><Number>PO-1</Number><Date>2009-03-01</Date></Header>
  <Line><Qty>5</Qty></Line>
  <Line><Qty>7</Qty></Line>
</Order>`

func TestParseBasics(t *testing.T) {
	doc, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "Order" {
		t.Fatalf("root = %q", doc.Root.Label)
	}
	if doc.Len() != 8 {
		t.Fatalf("len = %d, want 8", doc.Len())
	}
	lines := doc.NodesByPath("Order.Line")
	if len(lines) != 2 {
		t.Fatalf("Order.Line nodes = %d, want 2", len(lines))
	}
	qtys := doc.NodesByPath("Order.Line.Qty")
	if len(qtys) != 2 || qtys[0].Text != "5" || qtys[1].Text != "7" {
		t.Fatalf("Qty texts wrong: %+v", qtys)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"<a><b></a></b>",
		"<a/><b/>", // multiple roots
		"text only",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestIntervalInvariants(t *testing.T) {
	doc, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range doc.Nodes() {
		if n.Start >= n.End {
			t.Fatalf("node %s: Start %d >= End %d", n.Path, n.Start, n.End)
		}
		for _, c := range n.Children {
			if !n.IsAncestorOf(c) {
				t.Fatalf("parent %s not ancestor of child %s", n.Path, c.Path)
			}
			if c.IsAncestorOf(n) {
				t.Fatalf("child %s claims ancestry over parent", c.Path)
			}
			if c.Level != n.Level+1 {
				t.Fatalf("child level %d, parent level %d", c.Level, n.Level)
			}
		}
	}
	lines := doc.NodesByPath("Order.Line")
	if lines[0].IsAncestorOf(lines[1]) || lines[1].IsAncestorOf(lines[0]) {
		t.Fatal("siblings must not be ancestors of each other")
	}
	if !lines[0].Contains(lines[0]) {
		t.Fatal("Contains must include the node itself")
	}
}

func TestPreorderSorted(t *testing.T) {
	doc, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	nodes := doc.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Start <= nodes[i-1].Start {
			t.Fatal("Nodes() not in preorder")
		}
	}
	for _, p := range doc.Paths() {
		ns := doc.NodesByPath(p)
		for i := 1; i < len(ns); i++ {
			if ns[i].Start <= ns[i-1].Start {
				t.Fatalf("NodesByPath(%q) not sorted", p)
			}
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	doc, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(doc.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	var collect func(n *Node) []string
	collect = func(n *Node) []string {
		out := []string{n.Path + "=" + n.Text}
		for _, c := range n.Children {
			out = append(out, collect(c)...)
		}
		return out
	}
	if !reflect.DeepEqual(collect(doc.Root), collect(doc2.Root)) {
		t.Fatalf("round trip changed document:\n%v\n%v", collect(doc.Root), collect(doc2.Root))
	}
}

func TestEscaping(t *testing.T) {
	root := NewRoot("r")
	root.AddChild("c").AddText(`a <b> & "q"`)
	doc := New(root)
	doc2, err := ParseString(doc.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := doc2.NodesByPath("r.c")[0].Text; got != `a <b> & "q"` {
		t.Fatalf("escaped text round trip: %q", got)
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	doc, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	var visited []string
	doc.Walk(func(n *Node) bool {
		visited = append(visited, n.Label)
		return n.Label != "Header" // skip Header's children
	})
	for _, v := range visited {
		if v == "Number" || v == "Date" {
			t.Fatalf("Walk did not skip pruned subtree: %v", visited)
		}
	}
}

// randomTree builds a random node tree for property tests.
func randomTree(rng *rand.Rand, budget int) *Node {
	root := NewRoot("n0")
	nodes := []*Node{root}
	for i := 1; i < budget; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := p.AddChild("n" + strings.Repeat("x", rng.Intn(3)))
		nodes = append(nodes, c)
	}
	return root
}

func TestIntervalAncestryMatchesPointerAncestry(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := New(randomTree(rng, 2+rng.Intn(40)))
		nodes := doc.Nodes()
		for i := 0; i < 50; i++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			// Pointer-based ancestry.
			truth := false
			for p := b.Parent; p != nil; p = p.Parent {
				if p == a {
					truth = true
					break
				}
			}
			if a.IsAncestorOf(b) != truth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPathsAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	doc := New(randomTree(rng, 60))
	for _, n := range doc.Nodes() {
		if n.Parent != nil && n.Path != n.Parent.Path+"."+n.Label {
			t.Fatalf("path %q inconsistent with parent %q", n.Path, n.Parent.Path)
		}
		found := false
		for _, m := range doc.NodesByPath(n.Path) {
			if m == n {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %q missing from its path index", n.Path)
		}
	}
}
