package xmltree

import "fmt"

// CorpusRootLabel is the label of the synthetic root a Corpus document
// places above its members. Parentheses cannot appear in schema element
// names or parsed XML labels, so no twig pattern node ever binds it.
const CorpusRootLabel = "(corpus)"

// Corpus assembles member documents into one queryable document without
// renumbering or otherwise mutating them: a synthetic super-root (labelled
// CorpusRootLabel) spans every member, and the members' nodes keep their
// own interval numbers, levels, and dotted paths. The members must carry
// strictly ascending, disjoint interval ranges — the layout NewAt-based
// generators (dataset.OrderCorpus) produce — so the corpus preorder is the
// concatenation of the member preorders.
//
// The resulting document is the sharding oracle: evaluating a twig pattern
// over it yields, per (embedding, mapping), exactly the concatenation of
// the per-member results in member order, because every path's node list
// is the in-order concatenation of the members' lists and no interval
// spans two members. The cross-shard differential suites lean on this.
//
// The corpus is read-only: it shares the members' nodes, so revising it
// (BeginRevision) or revising a member while the corpus is in use is
// invalid. The super-root's Parent stays nil on every member root —
// consumers key structural facts off interval numbers, not Parent chains.
func Corpus(members ...*Document) (*Document, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("xmltree: corpus has no members")
	}
	total := 1
	for i, m := range members {
		if m == nil || m.Root == nil {
			return nil, fmt.Errorf("xmltree: corpus member %d is empty", i)
		}
		if i > 0 && m.Root.Start <= members[i-1].Root.End {
			return nil, fmt.Errorf("xmltree: corpus member %d range [%d,%d] does not follow member %d (end %d)",
				i, m.Root.Start, m.Root.End, i-1, members[i-1].Root.End)
		}
		total += m.Len()
	}
	super := &Node{
		Label: CorpusRootLabel,
		Path:  CorpusRootLabel,
		Start: members[0].Root.Start - 1,
		End:   members[len(members)-1].Root.End + 1,
	}
	d := &Document{Root: super}
	d.nodes = make([]*Node, 0, total)
	d.nodes = append(d.nodes, super)
	d.byPath = map[string][]*Node{CorpusRootLabel: {super}}
	for _, m := range members {
		super.Children = append(super.Children, m.Root)
		d.nodes = append(d.nodes, m.Nodes()...)
		for _, p := range m.Paths() {
			d.byPath[p] = append(d.byPath[p], m.NodesByPath(p)...)
		}
	}
	return d, nil
}
