package xmltree

import (
	"math/rand"
	"testing"
)

// validate checks a document's full structural consistency: preorder node
// list matches the tree, intervals nest properly and strictly increase,
// levels and paths derive from the tree shape, and the path index covers
// exactly the nodes.
func validate(t *testing.T, d *Document) {
	t.Helper()
	var walk func(n *Node, level int, prefix string) []*Node
	walk = func(n *Node, level int, prefix string) []*Node {
		if n.Level != level {
			t.Fatalf("node %q: level %d, want %d", n.Path, n.Level, level)
		}
		wantPath := n.Label
		if prefix != "" {
			wantPath = prefix + "." + n.Label
		}
		if n.Path != wantPath {
			t.Fatalf("node path %q, want %q", n.Path, wantPath)
		}
		if n.Start >= n.End {
			t.Fatalf("node %q: start %d >= end %d", n.Path, n.Start, n.End)
		}
		out := []*Node{n}
		prev := n.Start
		for _, c := range n.Children {
			if c.Start <= prev {
				t.Fatalf("node %q: child start %d not after %d", n.Path, c.Start, prev)
			}
			if !(n.Start < c.Start && c.End < n.End) {
				t.Fatalf("node %q: child %q interval %d:%d outside %d:%d", n.Path, c.Label, c.Start, c.End, n.Start, n.End)
			}
			out = append(out, walk(c, level+1, n.Path)...)
			prev = c.End
		}
		return out
	}
	want := walk(d.Root, 0, "")
	got := d.Nodes()
	if len(got) != len(want) {
		t.Fatalf("Nodes() has %d entries, tree has %d", len(got), len(want))
	}
	counts := map[string]int{}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Nodes()[%d] is %q(%d), want %q(%d)", i, got[i].Path, got[i].Start, want[i].Path, want[i].Start)
		}
		counts[got[i].Path]++
	}
	total := 0
	for p, c := range counts {
		list := d.NodesByPath(p)
		if len(list) != c {
			t.Fatalf("byPath[%q] has %d nodes, want %d", p, len(list), c)
		}
		for i := 1; i < len(list); i++ {
			if list[i].Start <= list[i-1].Start {
				t.Fatalf("byPath[%q] out of document order", p)
			}
		}
		total += len(list)
	}
	if total != len(got) {
		t.Fatalf("byPath covers %d nodes, want %d", total, len(got))
	}
}

func TestGapNumberingLeavesRoom(t *testing.T) {
	doc, err := ParseString(`<a><b>x</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, doc)
	ns := doc.Nodes()
	for i := 1; i < len(ns); i++ {
		if ns[i].Start-ns[i-1].Start < Gap {
			t.Fatalf("consecutive starts %d and %d closer than Gap", ns[i-1].Start, ns[i].Start)
		}
	}
}

func TestRevisionSetTextSharesUntouchedNodes(t *testing.T) {
	base, err := ParseString(`<r><a>1</a><b><c>2</c></b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	a := base.NodesByPath("r.a")[0]
	rev := base.BeginRevision()
	if err := rev.SetText(a.Start, "99"); err != nil {
		t.Fatal(err)
	}
	doc, cs := rev.Commit()
	validate(t, doc)
	// The base snapshot is unperturbed.
	if base.NodesByPath("r.a")[0].Text != "1" {
		t.Fatal("base snapshot text changed")
	}
	if doc.NodesByPath("r.a")[0].Text != "99" {
		t.Fatal("revision text not applied")
	}
	// The untouched subtree is the same object; the spine is cloned.
	if doc.NodesByPath("r.b")[0] != base.NodesByPath("r.b")[0] {
		t.Fatal("untouched sibling subtree was cloned")
	}
	if doc.Root == base.Root {
		t.Fatal("root was not cloned")
	}
	if len(cs.Dropped) != 2 || len(cs.Added) != 2 { // root + a superseded
		t.Fatalf("change set %d dropped / %d added, want 2/2", len(cs.Dropped), len(cs.Added))
	}
}

func TestRevisionInsertUsesGap(t *testing.T) {
	base, err := ParseString(`<r><a/><b/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	rev := base.BeginRevision()
	frag, _ := ParseString(`<x><y>t</y></x>`)
	if err := rev.InsertSubtree(base.Root.Start, 1, frag.Root); err != nil {
		t.Fatal(err)
	}
	doc, cs := rev.Commit()
	validate(t, doc)
	if got := len(doc.Nodes()); got != 5 {
		t.Fatalf("revised doc has %d nodes, want 5", got)
	}
	// a and b keep their numbers and identities: the insert fit in the gap.
	for _, p := range []string{"r.a", "r.b"} {
		if doc.NodesByPath(p)[0] != base.NodesByPath(p)[0] {
			t.Fatalf("%s was cloned by a gap-fitting insert", p)
		}
	}
	if doc.NodesByPath("r.x.y")[0].Text != "t" {
		t.Fatal("inserted subtree text missing")
	}
	if len(cs.Added) != 3 { // root clone + x + y
		t.Fatalf("added %d nodes, want 3", len(cs.Added))
	}
	if len(base.Nodes()) != 3 {
		t.Fatal("base document changed size")
	}
}

func TestRevisionDeleteAndRename(t *testing.T) {
	base, err := ParseString(`<r><a><b>1</b></a><c/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	a := base.NodesByPath("r.a")[0]
	c := base.NodesByPath("r.c")[0]
	rev := base.BeginRevision()
	if err := rev.DeleteSubtree(a.Start); err != nil {
		t.Fatal(err)
	}
	if err := rev.Rename(c.Start, "d"); err != nil {
		t.Fatal(err)
	}
	doc, _ := rev.Commit()
	validate(t, doc)
	if doc.NodesByPath("r.a") != nil || doc.NodesByPath("r.a.b") != nil {
		t.Fatal("deleted subtree still indexed")
	}
	if doc.NodesByPath("r.c") != nil {
		t.Fatal("renamed path still present")
	}
	if len(doc.NodesByPath("r.d")) != 1 {
		t.Fatal("renamed node missing")
	}
	if base.NodesByPath("r.c")[0].Label != "c" {
		t.Fatal("base label changed")
	}
	if err := base.BeginRevision().DeleteSubtree(base.Root.Start); err == nil {
		t.Fatal("deleting the root succeeded")
	}
}

func TestRevisionRenumberFallback(t *testing.T) {
	base, err := ParseString(`<r><a/><z/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Repeatedly insert right after a: the a..z gap (Gap-1 slots wide at
	// the start) must exhaust and force renumbering, which in turn must
	// keep every revision — and the original — structurally valid.
	doc := base
	for i := 0; i < 40; i++ {
		rev := doc.BeginRevision()
		frag, _ := ParseString(`<m><n/></m>`)
		if err := rev.InsertSubtree(doc.Root.Start, 1, frag.Root); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		next, _ := rev.Commit()
		validate(t, next)
		if next.Len() != doc.Len()+2 {
			t.Fatalf("insert %d: len %d, want %d", i, next.Len(), doc.Len()+2)
		}
		doc = next
	}
	validate(t, base)
	if base.Len() != 3 {
		t.Fatal("base document grew")
	}
}

func TestRevisionRandomizedAgainstRebuild(t *testing.T) {
	labels := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		doc := New(randomTree(rng, 2+rng.Intn(30)))
		for batch := 0; batch < 3; batch++ {
			rev := doc.BeginRevision()
			edits := 1 + rng.Intn(4)
			for e := 0; e < edits; e++ {
				ns := doc.Nodes()
				n := ns[rng.Intn(len(ns))]
				switch rng.Intn(4) {
				case 0, 1:
					sub := NewRoot(labels[rng.Intn(4)])
					if rng.Intn(2) == 0 {
						sub.AddChild(labels[rng.Intn(4)]).AddText("t")
					}
					if err := rev.InsertSubtree(n.Start, rng.Intn(3)-1, sub); err != nil {
						// The node may have been deleted earlier in the batch.
						if rev.Locate(n.Start) != nil {
							t.Fatalf("trial %d: insert: %v", trial, err)
						}
					}
				case 2:
					if n != doc.Root && rev.Locate(n.Start) != nil {
						if err := rev.DeleteSubtree(n.Start); err != nil {
							t.Fatalf("trial %d: delete: %v", trial, err)
						}
					}
				case 3:
					if rev.Locate(n.Start) != nil {
						var err error
						if rng.Intn(2) == 0 {
							err = rev.Rename(n.Start, labels[rng.Intn(4)])
						} else {
							err = rev.SetText(n.Start, "t2")
						}
						if err != nil {
							t.Fatalf("trial %d: %v", trial, err)
						}
					}
				}
			}
			next, _ := rev.Commit()
			validate(t, next)
			// The revised snapshot must serialize exactly like a fresh
			// document built from the same tree shape.
			reparsed, err := ParseString(next.String())
			if err != nil {
				t.Fatalf("trial %d: reparse: %v", trial, err)
			}
			if reparsed.String() != next.String() {
				t.Fatalf("trial %d: serialization unstable", trial)
			}
			doc = next
		}
	}
}
