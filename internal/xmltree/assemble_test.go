package xmltree

import (
	"strings"
	"testing"
)

// specsOf flattens a document into the persisted preorder form Assemble
// consumes, resolving parents by Start (pointer identity is not stable
// across copy-on-write revisions; positional identity is).
func specsOf(d *Document) []NodeSpec {
	nodes := d.Nodes()
	pos := make(map[int]int, len(nodes))
	for i, n := range nodes {
		pos[n.Start] = i
	}
	specs := make([]NodeSpec, len(nodes))
	for i, n := range nodes {
		p := -1
		if n.Parent != nil {
			p = pos[n.Parent.Start]
		}
		specs[i] = NodeSpec{Label: n.Label, Text: n.Text, Parent: p, Start: n.Start, End: n.End}
	}
	return specs
}

func TestAssembleRoundTrip(t *testing.T) {
	orig, err := ParseString(`<r><a>1</a><b><c>x</c><c>y</c></b><d/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Assemble(specsOf(orig), orig.NumBase())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != orig.String() {
		t.Fatalf("serialization diverged:\n%s\nvs\n%s", got, orig)
	}
	on, gn := orig.Nodes(), got.Nodes()
	if len(on) != len(gn) {
		t.Fatalf("%d nodes, want %d", len(gn), len(on))
	}
	for i := range on {
		o, g := on[i], gn[i]
		if g.Start != o.Start || g.End != o.End || g.Level != o.Level || g.Path != o.Path {
			t.Fatalf("node %d diverged: %+v vs %+v", i, g, o)
		}
	}
	// Path lookups work on the assembled document.
	if n := got.NodesByPath("r.b.c"); len(n) != 2 {
		t.Fatalf("r.b.c resolved to %d nodes", len(n))
	}
}

func TestAssembleNonzeroBase(t *testing.T) {
	// A collection member numbered above a base must come back at that
	// base, with its intervals untouched.
	root := NewRoot("m")
	root.AddChild("x").AddText("v")
	orig := NewAt(root, 1000)
	got, err := Assemble(specsOf(orig), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBase() != 1000 {
		t.Fatalf("numBase %d, want 1000", got.NumBase())
	}
	if got.Root.Start != orig.Root.Start || got.Root.End != orig.Root.End {
		t.Fatalf("root renumbered: [%d,%d] vs [%d,%d]", got.Root.Start, got.Root.End, orig.Root.Start, orig.Root.End)
	}
}

func TestAssembleRejectsInvariantViolations(t *testing.T) {
	good := func() []NodeSpec {
		return []NodeSpec{
			{Label: "r", Parent: -1, Start: 10, End: 100},
			{Label: "a", Parent: 0, Start: 20, End: 30},
			{Label: "b", Parent: 0, Start: 40, End: 50},
		}
	}
	cases := map[string]struct {
		specs []NodeSpec
		base  int
		want  string
	}{
		"empty":            {nil, 0, "no nodes"},
		"negative base":    {good(), -1, "negative numbering base"},
		"root has parent":  {func() []NodeSpec { s := good(); s[0].Parent = 0; return s }(), 0, "must be the root"},
		"empty label":      {func() []NodeSpec { s := good(); s[1].Label = ""; return s }(), 0, "empty label"},
		"start below base": {good(), 10, "not ascending"},
		"starts unordered": {func() []NodeSpec { s := good(); s[2].Start = 15; s[2].End = 18; return s }(), 0, "not ascending"},
		"inverted":         {func() []NodeSpec { s := good(); s[1].End = 20; return s }(), 0, "inverted"},
		"forward parent":   {func() []NodeSpec { s := good(); s[1].Parent = 2; return s }(), 0, "invalid parent"},
		"parent oob":       {func() []NodeSpec { s := good(); s[2].Parent = 9; return s }(), 0, "invalid parent"},
		"escapes parent":   {func() []NodeSpec { s := good(); s[2].End = 200; return s }(), 0, "escapes parent"},
		"overlaps sibling": {func() []NodeSpec { s := good(); s[2].Start = 25; s[2].End = 35; return s }(), 0, "overlaps sibling"},
	}
	for name, tc := range cases {
		_, err := Assemble(tc.specs, tc.base)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
	// The unperturbed specs assemble fine.
	if _, err := Assemble(good(), 0); err != nil {
		t.Fatalf("good specs rejected: %v", err)
	}
}
