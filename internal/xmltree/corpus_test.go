package xmltree

import (
	"fmt"
	"testing"
)

// smallDoc builds a tiny Order-shaped document at the given numbering base.
func smallDoc(t *testing.T, base, lines int) *Document {
	t.Helper()
	root := NewRoot("Order")
	for i := 0; i < lines; i++ {
		l := root.AddChild("POLine")
		l.AddChild("Quantity").AddText(fmt.Sprintf("q%d", i))
	}
	return NewAt(root, base)
}

func TestNewAtShiftsNumbering(t *testing.T) {
	plain := smallDoc(t, 0, 3)
	const base = 4096
	off := smallDoc(t, base, 3)
	if off.NumBase() != base {
		t.Fatalf("NumBase = %d, want %d", off.NumBase(), base)
	}
	if plain.Len() != off.Len() {
		t.Fatalf("Len mismatch: %d vs %d", plain.Len(), off.Len())
	}
	for i, n := range plain.Nodes() {
		o := off.Nodes()[i]
		if o.Start != n.Start+base || o.End != n.End+base {
			t.Fatalf("node %d: got [%d,%d], want [%d,%d]", i, o.Start, o.End, n.Start+base, n.End+base)
		}
		if o.Level != n.Level || o.Path != n.Path {
			t.Fatalf("node %d: level/path drift", i)
		}
	}
	if off.Nodes()[0].Start <= base {
		t.Fatalf("first boundary %d not above base %d", off.Nodes()[0].Start, base)
	}
	if off.MaxEnd() != off.Root.End {
		t.Fatalf("MaxEnd = %d, want root end %d", off.MaxEnd(), off.Root.End)
	}
}

func TestCorpusConcatenatesMembers(t *testing.T) {
	var members []*Document
	base := 0
	for i := 0; i < 3; i++ {
		m := smallDoc(t, base, i+1)
		members = append(members, m)
		base = m.MaxEnd() + Gap
	}
	c, err := Corpus(members...)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 1
	for _, m := range members {
		wantLen += m.Len()
	}
	if c.Len() != wantLen {
		t.Fatalf("corpus Len = %d, want %d", c.Len(), wantLen)
	}
	if c.Root.Label != CorpusRootLabel || len(c.NodesByPath(CorpusRootLabel)) != 1 {
		t.Fatalf("super-root not addressable under %q", CorpusRootLabel)
	}
	// Per-path lists are the in-order concatenation of member lists, and
	// every list is strictly ordered by Start.
	for _, p := range []string{"Order", "Order.POLine", "Order.POLine.Quantity"} {
		var want []*Node
		for _, m := range members {
			want = append(want, m.NodesByPath(p)...)
		}
		got := c.NodesByPath(p)
		if len(got) != len(want) {
			t.Fatalf("path %s: %d nodes, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("path %s: node %d differs from member concatenation", p, i)
			}
			if i > 0 && got[i].Start <= got[i-1].Start {
				t.Fatalf("path %s: starts not strictly ascending at %d", p, i)
			}
		}
	}
	// The super-root spans every member; members never span each other.
	for i, m := range members {
		if !c.Root.IsAncestorOf(m.Root) {
			t.Fatalf("super-root does not span member %d", i)
		}
		for j, o := range members {
			if i != j && m.Root.IsAncestorOf(o.Root) {
				t.Fatalf("member %d spans member %d", i, j)
			}
		}
	}
	// Members were not mutated: their own path lookups still work and
	// their parents were left alone.
	for i, m := range members {
		if m.Root.Parent != nil {
			t.Fatalf("member %d root grew a parent", i)
		}
		if len(m.NodesByPath("Order.POLine")) != i+1 {
			t.Fatalf("member %d path index changed", i)
		}
	}
}

func TestCorpusRejectsBadMembers(t *testing.T) {
	if _, err := Corpus(); err == nil {
		t.Fatal("empty corpus accepted")
	}
	a := smallDoc(t, 0, 2)
	b := smallDoc(t, 0, 2) // overlaps a
	if _, err := Corpus(a, b); err == nil {
		t.Fatal("overlapping members accepted")
	}
	c := smallDoc(t, a.MaxEnd(), 1) // touching is still overlap (start <= end)
	if c.Root.Start > a.Root.End {
		t.Skip("generator left a gap; adjust test")
	}
	if _, err := Corpus(a, c); err == nil {
		t.Fatal("touching members accepted")
	}
}

// TestRevisionPreservesNumBase drives a member document through edits that
// force both the localized and the whole-document renumbering paths and
// checks the numbering never escapes below the base.
func TestRevisionPreservesNumBase(t *testing.T) {
	const base = 1 << 20
	doc := smallDoc(t, base, 2)
	for round := 0; round < 8; round++ {
		rev := doc.BeginRevision()
		// Insert a bushy subtree under the first POLine; repeated rounds
		// exhaust local gaps and eventually demand a full renumber.
		sub := NewRoot("Annex")
		for i := 0; i < 40; i++ {
			sub.AddChild("Note").AddText(fmt.Sprintf("r%d-%d", round, i))
		}
		line := doc.NodesByPath("Order.POLine")[0]
		if err := rev.InsertSubtree(line.Start, 0, sub); err != nil {
			t.Fatalf("round %d: insert: %v", round, err)
		}
		doc, _ = rev.Commit()
		if doc.NumBase() != base {
			t.Fatalf("round %d: NumBase = %d, want %d", round, doc.NumBase(), base)
		}
		prev := base
		for _, n := range doc.Nodes() {
			if n.Start <= base {
				t.Fatalf("round %d: node %q start %d at or below base %d", round, n.Path, n.Start, base)
			}
			if n.Start <= prev {
				t.Fatalf("round %d: preorder starts not strictly ascending", round)
			}
			prev = n.Start
		}
	}
}
