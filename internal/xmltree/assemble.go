package xmltree

import "fmt"

// NodeSpec describes one node of a document being reassembled from
// persisted state. Specs are given in preorder; Parent indexes the spec
// slice (-1 for the root, which must be spec 0). Start and End are the
// persisted interval numbers, carried back verbatim.
type NodeSpec struct {
	Label  string
	Text   string
	Parent int
	Start  int
	End    int
}

// Assemble rebuilds a Document from its persisted preorder form, keeping
// the recorded interval numbering instead of assigning a fresh one. New
// and NewAt renumber — fine for a parsed document, fatal for a restored
// checkpoint: edits address nodes by Start, match keys order by interval,
// and a collection's members sit at disjoint numbering bases, so a
// checkpoint must come back with exactly the numbers it was saved with.
// Assemble validates the structural invariants renumbering would
// otherwise guarantee by construction: strictly ascending preorder Starts
// above numBase, sibling intervals disjoint and in document order, every
// child interval strictly inside its parent's.
func Assemble(specs []NodeSpec, numBase int) (*Document, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("xmltree: assemble: no nodes")
	}
	if numBase < 0 {
		return nil, fmt.Errorf("xmltree: assemble: negative numbering base %d", numBase)
	}
	nodes := make([]*Node, len(specs))
	lastStart := numBase
	for i, sp := range specs {
		if sp.Label == "" {
			return nil, fmt.Errorf("xmltree: assemble: node %d has an empty label", i)
		}
		if sp.Start <= lastStart {
			return nil, fmt.Errorf("xmltree: assemble: node %d start %d not ascending (prev %d, base %d)", i, sp.Start, lastStart, numBase)
		}
		if sp.End <= sp.Start {
			return nil, fmt.Errorf("xmltree: assemble: node %d interval [%d,%d] inverted", i, sp.Start, sp.End)
		}
		lastStart = sp.Start
		n := &Node{Label: sp.Label, Text: sp.Text, Start: sp.Start, End: sp.End}
		if i == 0 {
			if sp.Parent != -1 {
				return nil, fmt.Errorf("xmltree: assemble: node 0 must be the root (parent -1, got %d)", sp.Parent)
			}
			n.Path = n.Label
		} else {
			if sp.Parent < 0 || sp.Parent >= i {
				return nil, fmt.Errorf("xmltree: assemble: node %d has invalid parent %d", i, sp.Parent)
			}
			p := nodes[sp.Parent]
			if sp.Start <= p.Start || sp.End >= p.End {
				return nil, fmt.Errorf("xmltree: assemble: node %d interval [%d,%d] escapes parent [%d,%d]", i, sp.Start, sp.End, p.Start, p.End)
			}
			if len(p.Children) > 0 {
				if prev := p.Children[len(p.Children)-1]; sp.Start <= prev.End {
					return nil, fmt.Errorf("xmltree: assemble: node %d interval [%d,%d] overlaps sibling [%d,%d]", i, sp.Start, sp.End, prev.Start, prev.End)
				}
			}
			n.Parent = p
			n.Level = p.Level + 1
			n.Path = p.Path + "." + n.Label
			p.Children = append(p.Children, n)
		}
		nodes[i] = n
	}
	d := &Document{Root: nodes[0], nodes: nodes, numBase: numBase}
	d.byPath = make(map[string][]*Node, len(nodes))
	for _, n := range nodes {
		d.byPath[n.Path] = append(d.byPath[n.Path], n)
	}
	return d, nil
}
