package mapgen

import (
	"math"
	"math/rand"
	"testing"

	"xmatch/internal/mapping"
	"xmatch/internal/matching"
	"xmatch/internal/schema"
)

// chainSchema builds a schema whose root has n-1 children, so element IDs
// 1..n-1 are leaves; handy for constructing arbitrary matchings.
func chainSchema(name string, n int, t *testing.T) *schema.Schema {
	t.Helper()
	if n < 1 {
		t.Fatalf("chainSchema: n=%d", n)
	}
	b := schema.NewBuilder(name, "R")
	for i := 1; i < n; i++ {
		b.Root.AddChild("e" + string(rune('A'+i%26)) + itoa(i))
	}
	return b.Freeze()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// randomMatching builds a random sparse matching between two flat schemas.
func randomMatching(rng *rand.Rand, t *testing.T, maxElems, maxCorrs int) *matching.Matching {
	ns := 2 + rng.Intn(maxElems)
	nt := 2 + rng.Intn(maxElems)
	src := chainSchema("S", ns, t)
	tgt := chainSchema("T", nt, t)
	seen := map[[2]int]bool{}
	var corrs []matching.Correspondence
	n := rng.Intn(maxCorrs + 1)
	for len(corrs) < n {
		s, tg := rng.Intn(ns), rng.Intn(nt)
		if seen[[2]int{s, tg}] {
			if len(seen) >= ns*nt {
				break
			}
			continue
		}
		seen[[2]int{s, tg}] = true
		corrs = append(corrs, matching.Correspondence{
			S: s, T: tg, Score: float64(1+rng.Intn(20)) / 20.0,
		})
	}
	return matching.MustNew(src, tgt, corrs)
}

func TestTopHRejectsBadH(t *testing.T) {
	u := randomMatching(rand.New(rand.NewSource(1)), t, 5, 5)
	if _, err := TopH(u, 0, Murty); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := TopH(u, -1, Partition); err == nil {
		t.Error("h=-1 accepted")
	}
}

func TestTopHEmptyMatching(t *testing.T) {
	src := chainSchema("S", 3, t)
	tgt := chainSchema("T", 3, t)
	u := matching.MustNew(src, tgt, nil)
	for _, method := range []Method{Murty, Partition} {
		set, err := TopH(u, 5, method)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if set.Len() != 1 || set.Mappings[0].Len() != 0 {
			t.Fatalf("%v: expected single empty mapping, got %d mappings", method, set.Len())
		}
		if set.Mappings[0].Prob != 1 {
			t.Fatalf("%v: empty mapping probability %v, want 1", method, set.Mappings[0].Prob)
		}
	}
}

func TestMethodsAgreeOnScores(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		u := randomMatching(rng, t, 8, 12)
		h := 1 + rng.Intn(20)
		a, err := TopH(u, h, Murty)
		if err != nil {
			t.Fatalf("trial %d murty: %v", trial, err)
		}
		b, err := TopH(u, h, Partition)
		if err != nil {
			t.Fatalf("trial %d partition: %v", trial, err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("trial %d: murty %d mappings, partition %d (h=%d, cap=%d)",
				trial, a.Len(), b.Len(), h, u.Capacity())
		}
		for i := range a.Mappings {
			if math.Abs(a.Mappings[i].Score-b.Mappings[i].Score) > 1e-9 {
				t.Fatalf("trial %d rank %d: murty score %v, partition score %v",
					trial, i, a.Mappings[i].Score, b.Mappings[i].Score)
			}
		}
	}
}

func TestMappingsAreValidAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		u := randomMatching(rng, t, 7, 10)
		for _, method := range []Method{Murty, Partition} {
			set, err := TopH(u, 15, method)
			if err != nil {
				t.Fatalf("%v: %v", method, err)
			}
			keys := map[string]bool{}
			for _, m := range set.Mappings {
				// One-to-one: enforced by NewSet/freeze (it would
				// have errored); check pair validity against U.
				for _, p := range m.Pairs {
					found := false
					for _, c := range u.Corrs {
						if c.S == p.S && c.T == p.T {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%v: mapping uses pair (%d,%d) not in matching", method, p.S, p.T)
					}
				}
				k := ""
				for _, p := range m.Pairs {
					k += itoa(p.S) + ":" + itoa(p.T) + ";"
				}
				if keys[k] {
					t.Fatalf("%v trial %d: duplicate mapping %q", method, trial, k)
				}
				keys[k] = true
			}
		}
	}
}

func TestProbabilitiesNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		u := randomMatching(rng, t, 8, 12)
		set, err := TopH(u, 10, Partition)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i, m := range set.Mappings {
			sum += m.Prob
			if i > 0 && m.Prob > set.Mappings[i-1].Prob+1e-12 {
				t.Fatalf("trial %d: probabilities not non-increasing", trial)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: probabilities sum to %v", trial, sum)
		}
	}
}

func TestPartitionFasterStructure(t *testing.T) {
	// Build a matching of many disconnected 2x2 components; the partition
	// method must produce one partition per component.
	src := chainSchema("S", 41, t)
	tgt := chainSchema("T", 41, t)
	var corrs []matching.Correspondence
	for i := 0; i < 20; i++ {
		s0, t0 := 1+2*i, 1+2*i
		corrs = append(corrs,
			matching.Correspondence{S: s0, T: t0, Score: 0.9},
			matching.Correspondence{S: s0, T: t0 + 1, Score: 0.6},
			matching.Correspondence{S: s0 + 1, T: t0, Score: 0.5},
		)
	}
	u := matching.MustNew(src, tgt, corrs)
	if got := len(u.Partitions()); got != 20 {
		t.Fatalf("expected 20 partitions, got %d", got)
	}
	set, err := TopH(u, 50, Partition)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 50 {
		t.Fatalf("expected 50 mappings, got %d", set.Len())
	}
	// Per component the 0.6+0.5 pair of disjoint edges (1.1) beats the
	// single 0.9 edge, so the best mapping has two pairs per component.
	best := set.Mappings[0]
	if best.Len() != 40 {
		t.Fatalf("best mapping has %d pairs, want 40", best.Len())
	}
	wantScore := 20 * (0.6 + 0.5)
	if math.Abs(best.Score-wantScore) > 1e-9 {
		t.Fatalf("best score %v, want %v", best.Score, wantScore)
	}
}

func TestMethodString(t *testing.T) {
	if Murty.String() != "murty" || Partition.String() != "partition" {
		t.Error("method names changed")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should still render")
	}
}

func TestSetRawBytes(t *testing.T) {
	src := chainSchema("S", 4, t)
	tgt := chainSchema("T", 4, t)
	m := &mapping.Mapping{Pairs: []mapping.Pair{{S: 1, T: 1}, {S: 2, T: 2}}, Score: 1}
	set := mapping.MustNewSet(src, tgt, []*mapping.Mapping{m})
	want := mapping.MappingOverhead + 2*mapping.CorrBytes
	if got := set.RawBytes(); got != want {
		t.Fatalf("RawBytes = %d, want %d", got, want)
	}
}
