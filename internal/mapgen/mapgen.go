// Package mapgen derives the top-h possible mappings from a schema matching
// (Cheng, Gong, Cheung, ICDE 2010, Section V). Two methods are provided:
//
//   - Murty: ranked bipartite matching over the whole correspondence graph
//     (the paper's baseline, "the advanced version of Murty's algorithm").
//   - Partition: the paper's divide-and-conquer Algorithm 5 — decompose the
//     sparse matching into maximal connected partitions, rank each partition
//     independently, and fold the ranked lists together with a best-first
//     top-h merge.
//
// Both return identical mapping sets (a property the tests verify); the
// partitioned method is faster by roughly the factor the paper reports
// because ranked matching cost grows polynomially with graph size while
// partitions of real XML matchings are small.
package mapgen

import (
	"container/heap"
	"fmt"

	"xmatch/internal/assignment"
	"xmatch/internal/mapping"
	"xmatch/internal/matching"
)

// Method selects the top-h generation algorithm.
type Method int

const (
	// Murty ranks matchings over the whole bipartite graph.
	Murty Method = iota
	// Partition applies the divide-and-conquer Algorithm 5.
	Partition
)

// String names the method as in the paper's figures.
func (m Method) String() string {
	switch m {
	case Murty:
		return "murty"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// TopH returns the h highest-score possible mappings of the matching as a
// probability-normalized mapping set (pi = score_i / Σ scores). Fewer than
// h mappings are returned when the matching admits fewer distinct mappings.
func TopH(u *matching.Matching, h int, method Method) (*mapping.Set, error) {
	if h <= 0 {
		return nil, fmt.Errorf("mapgen: h must be positive, got %d", h)
	}
	var selections [][]int // correspondence indices per mapping, ranked
	var err error
	switch method {
	case Murty:
		selections, err = topHWhole(u, h)
	case Partition:
		selections, err = topHPartitioned(u, h)
	default:
		return nil, fmt.Errorf("mapgen: unknown method %v", method)
	}
	if err != nil {
		return nil, err
	}
	mappings := make([]*mapping.Mapping, 0, len(selections))
	for _, sel := range selections {
		m, err := mapping.FromMatchingCorrs(u, sel)
		if err != nil {
			return nil, err
		}
		mappings = append(mappings, m)
	}
	return mapping.NewSet(u.Source, u.Target, mappings)
}

// topHWhole runs ranked matching on the full correspondence graph.
func topHWhole(u *matching.Matching, h int) ([][]int, error) {
	edges := make([]assignment.Edge, len(u.Corrs))
	for i, c := range u.Corrs {
		edges[i] = assignment.Edge{U: c.S, V: c.T, W: c.Score}
	}
	g, err := assignment.NewGraph(u.Source.Len(), u.Target.Len(), edges)
	if err != nil {
		return nil, fmt.Errorf("mapgen: %w", err)
	}
	sols := g.TopH(h)
	out := make([][]int, len(sols))
	for i, s := range sols {
		out[i] = s.EdgeIDs // edge i is correspondence i
	}
	return out, nil
}

// partial is one entry of the folded ranked list during partition merging:
// a choice of one ranked solution per already-merged partition, stored as a
// persistent linked list to avoid quadratic copying.
type partial struct {
	score float64
	// corrs are the matching correspondence indices chosen in the most
	// recently merged partition.
	corrs []int
	prev  *partial
}

// topHPartitioned implements Algorithm 5: partition, rank per partition,
// fold with a best-first top-h merge.
func topHPartitioned(u *matching.Matching, h int) ([][]int, error) {
	parts := u.Partitions()
	if len(parts) == 0 {
		// No correspondences at all: the only mapping is the empty one.
		return [][]int{nil}, nil
	}
	// current is the ranked list of combined partials so far.
	var current []*partial
	for _, p := range parts {
		ranked, err := rankPartition(u, p, h)
		if err != nil {
			return nil, err
		}
		if current == nil {
			current = ranked
			continue
		}
		current = mergeTopH(current, ranked, h)
	}
	out := make([][]int, len(current))
	for i, pt := range current {
		var corrs []int
		for q := pt; q != nil; q = q.prev {
			corrs = append(corrs, q.corrs...)
		}
		out[i] = corrs
	}
	return out, nil
}

// rankPartition ranks the matchings of one partition. The returned partials
// have nil prev pointers. Requesting only the top h per partition is
// sufficient for a global top-h: any combination using a partition's rank
// beyond h is dominated by at least h combinations that upgrade that
// partition's choice.
func rankPartition(u *matching.Matching, p *matching.Partition, h int) ([]*partial, error) {
	srcIdx := make(map[int]int, len(p.SourceIDs))
	for i, id := range p.SourceIDs {
		srcIdx[id] = i
	}
	tgtIdx := make(map[int]int, len(p.TargetIDs))
	for i, id := range p.TargetIDs {
		tgtIdx[id] = i
	}
	edges := make([]assignment.Edge, len(p.Corrs))
	for i, ci := range p.Corrs {
		c := u.Corrs[ci]
		edges[i] = assignment.Edge{U: srcIdx[c.S], V: tgtIdx[c.T], W: c.Score}
	}
	g, err := assignment.NewGraph(len(p.SourceIDs), len(p.TargetIDs), edges)
	if err != nil {
		return nil, fmt.Errorf("mapgen: partition graph: %w", err)
	}
	sols := g.TopH(h)
	out := make([]*partial, len(sols))
	for i, s := range sols {
		corrs := make([]int, len(s.EdgeIDs))
		for j, ei := range s.EdgeIDs {
			corrs[j] = p.Corrs[ei] // local edge j is partition correspondence j
		}
		out[i] = &partial{score: s.Score, corrs: corrs}
	}
	return out, nil
}

// mergeState is a frontier cell of the best-first merge of two ranked lists.
type mergeState struct {
	i, j  int
	score float64
}

type mergeHeap []mergeState

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeState)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeTopH returns the h best combinations of one entry from each ranked
// list (scores add), as new partials chaining b's choice onto a's. This is
// the merge function of Algorithm 5; because the lists are sorted, a
// best-first walk of the (i, j) grid visits combinations in score order.
func mergeTopH(a, b []*partial, h int) []*partial {
	if len(a) == 0 || len(b) == 0 {
		// Defensive: ranked lists always contain at least the empty
		// matching, so this should not happen.
		if len(a) == 0 {
			return b
		}
		return a
	}
	pq := &mergeHeap{{0, 0, a[0].score + b[0].score}}
	seen := map[[2]int]bool{{0, 0}: true}
	out := make([]*partial, 0, h)
	for pq.Len() > 0 && len(out) < h {
		s := heap.Pop(pq).(mergeState)
		out = append(out, &partial{
			score: s.score,
			corrs: b[s.j].corrs,
			prev:  a[s.i],
		})
		if s.i+1 < len(a) && !seen[[2]int{s.i + 1, s.j}] {
			seen[[2]int{s.i + 1, s.j}] = true
			heap.Push(pq, mergeState{s.i + 1, s.j, a[s.i+1].score + b[s.j].score})
		}
		if s.j+1 < len(b) && !seen[[2]int{s.i, s.j + 1}] {
			seen[[2]int{s.i, s.j + 1}] = true
			heap.Push(pq, mergeState{s.i, s.j + 1, a[s.i].score + b[s.j+1].score})
		}
	}
	return out
}
