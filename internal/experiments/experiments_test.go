package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinySuite runs experiments at reduced scale so the whole harness is
// exercised in seconds.
func tinySuite() *Suite {
	return NewSuite(Config{M: 20, Repeats: 1, DocNodes: 1200, GenH: 5, MaxH: 100})
}

func TestAllExperimentsRun(t *testing.T) {
	s := tinySuite()
	for _, name := range s.Names() {
		var buf bytes.Buffer
		if err := s.Run(name, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "== "+name) {
			t.Fatalf("%s: output missing header:\n%s", name, buf.String())
		}
		if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) < 4 {
			t.Fatalf("%s: suspiciously short output:\n%s", name, buf.String())
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := tinySuite()
	var buf bytes.Buffer
	if err := s.Run("nope", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig9bMonotone(t *testing.T) {
	s := tinySuite()
	tbl, err := s.Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, row := range tbl.Rows {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("bad count %q", row[1])
		}
		if n > prev {
			t.Fatalf("c-block count increased with tau: %v", tbl.Rows)
		}
		prev = n
	}
}

func TestScaleShape(t *testing.T) {
	s := NewSuite(Config{M: 20, Repeats: 1, DocNodes: 1200, GenH: 5, MaxH: 100, MaxWorkers: 4})
	tbl, err := s.Scale()
	if err != nil {
		t.Fatal(err)
	}
	// Sweep {1, 2, 4} at |M| and 5|M|.
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6:\n%v", len(tbl.Rows), tbl.Rows)
	}
	wantWorkers := []string{"1", "2", "4", "1", "2", "4"}
	for i, row := range tbl.Rows {
		if row[1] != wantWorkers[i] {
			t.Errorf("row %d workers = %s, want %s", i, row[1], wantWorkers[i])
		}
		if row[1] == "1" {
			for _, col := range []int{3, 5, 7} {
				if row[col] != "1.00x" {
					t.Errorf("row %d col %d = %s, want 1.00x at workers=1", i, col, row[col])
				}
			}
		}
	}
}

func TestTable2CapacitiesMatchPaper(t *testing.T) {
	s := tinySuite()
	tbl, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	wantCaps := []string{"30", "47", "31", "41", "21", "77", "226", "127", "619", "619"}
	for i, row := range tbl.Rows {
		if row[6] != wantCaps[i] {
			t.Errorf("%s: capacity %s, want %s", row[0], row[6], wantCaps[i])
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "T", Note: "n",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: T ==", "n", "a    bb", "333  4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
