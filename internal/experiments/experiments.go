// Package experiments regenerates every table and figure of the paper's
// evaluation (Cheng, Gong, Cheung, ICDE 2010, Section VI) on the synthetic
// Table II datasets: mapping overlap (Table II), block-tree spatial
// efficiency and construction (Figures 9a–9e), PTQ and top-k PTQ query
// performance (Figures 9f, 10a–10d), and top-h mapping generation
// (Figures 10e, 10f). Beyond the paper, the "scale" experiment measures the
// concurrent PTQ engine of internal/engine: speedup versus worker count for
// basic, block-tree, and top-k evaluation.
//
// Each experiment returns a Table that prints the same rows/series the
// paper reports; cmd/experiments renders them and EXPERIMENTS.md records
// the measured-vs-paper comparison.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/engine"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/xmltree"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Note   string // expected shape vs the paper
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   %s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV with a leading comment line carrying
// the title, for downstream plotting.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Config scales the experiments. Full reproduces the paper's parameters;
// the reduced defaults keep a complete run under a couple of minutes.
type Config struct {
	// M is the default possible-mapping count |M| (paper: 100).
	M int
	// Repeats averages each timing over this many runs (paper: 50).
	Repeats int
	// DocNodes is the source document size (paper: 3473).
	DocNodes int
	// GenH is h for the mapping-generation comparison of Figure 10(e).
	GenH int
	// GenRepeats overrides Repeats for the expensive mapping-generation
	// experiments (Figures 10(e) and 10(f)); 0 means use Repeats.
	GenRepeats int
	// MaxH is the largest h in the Figure 10(f) sweep (paper: 1000).
	MaxH int
	// MaxWorkers caps the worker sweep of the engine scalability
	// experiment (beyond the paper); 0 means GOMAXPROCS.
	MaxWorkers int
}

// DefaultConfig returns paper-equivalent parameters except for fewer
// timing repeats.
func DefaultConfig() Config {
	return Config{M: 100, Repeats: 5, DocNodes: 3473, GenH: 100, MaxH: 1000}
}

// Suite caches the shared workload state (datasets, mapping sets, the
// source document) across experiments.
type Suite struct {
	Cfg Config

	datasets map[string]*dataset.Dataset
	sets     map[string]*mapping.Set // key: "<id>/<m>"
	doc      *xmltree.Document
}

// NewSuite prepares a suite with the given configuration.
func NewSuite(cfg Config) *Suite {
	if cfg.M == 0 {
		cfg = DefaultConfig()
	}
	return &Suite{
		Cfg:      cfg,
		datasets: map[string]*dataset.Dataset{},
		sets:     map[string]*mapping.Set{},
	}
}

func (s *Suite) dataset(id string) (*dataset.Dataset, error) {
	if d, ok := s.datasets[id]; ok {
		return d, nil
	}
	d, err := dataset.Load(id)
	if err != nil {
		return nil, err
	}
	s.datasets[id] = d
	return d, nil
}

func (s *Suite) mappingSet(id string, m int) (*mapping.Set, error) {
	key := fmt.Sprintf("%s/%d", id, m)
	if set, ok := s.sets[key]; ok {
		return set, nil
	}
	d, err := s.dataset(id)
	if err != nil {
		return nil, err
	}
	set, err := mapgen.TopH(d.Matching, m, mapgen.Partition)
	if err != nil {
		return nil, err
	}
	s.sets[key] = set
	return set, nil
}

func (s *Suite) document() (*xmltree.Document, error) {
	if s.doc != nil {
		return s.doc, nil
	}
	d, err := s.dataset("D7")
	if err != nil {
		return nil, err
	}
	s.doc = d.OrderDocument(s.Cfg.DocNodes, 42)
	return s.doc, nil
}

// timeIt returns the mean wall time of fn over the configured repeats.
func (s *Suite) timeIt(fn func()) time.Duration { return timeN(s.Cfg.Repeats, fn) }

// timeGen is timeIt for the mapping-generation experiments, which get
// their own repeat count because the murty baseline is orders of magnitude
// slower than everything else.
func (s *Suite) timeGen(fn func()) time.Duration {
	n := s.Cfg.GenRepeats
	if n == 0 {
		n = s.Cfg.Repeats
	}
	return timeN(n, fn)
}

func timeN(n int, fn func()) time.Duration {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// tauSweep is the τ range of Figures 9(a) and 9(b).
var tauSweep = []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// Table2 reproduces Table II: dataset composition plus the measured
// average o-ratio of the |M| generated mappings next to the paper's value.
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "Schema matching datasets (measured o-ratio vs paper)",
		Note:  "expected shape: all datasets show high mapping overlap (o-ratio well above 0.5)",
		Header: []string{"ID", "S", "|S|", "T", "|T|", "opt", "Cap.",
			"o-ratio", "paper", "partitions"},
	}
	for _, id := range dataset.IDs() {
		d, err := s.dataset(id)
		if err != nil {
			return nil, err
		}
		set, err := s.mappingSet(id, s.Cfg.M)
		if err != nil {
			return nil, err
		}
		st := d.Matching.Stats()
		t.Rows = append(t.Rows, []string{
			d.Info.ID, d.Info.Src, fmt.Sprint(d.Source.Len()),
			d.Info.Tgt, fmt.Sprint(d.Target.Len()), d.Info.Opt,
			fmt.Sprint(d.Matching.Capacity()),
			fmt.Sprintf("%.2f", set.AverageORatio()),
			fmt.Sprintf("%.2f", d.Info.PaperORatio),
			fmt.Sprint(st.NumPartitions),
		})
	}
	return t, nil
}

// Fig9a reproduces Figure 9(a): compression ratio vs τ on D7.
func (s *Suite) Fig9a() (*Table, error) {
	set, err := s.mappingSet("D7", s.Cfg.M)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9a",
		Title:  "Compression ratio vs tau (D7)",
		Note:   "expected shape: ratio decreases as tau increases (fewer c-blocks)",
		Header: []string{"tau", "compression-ratio", "#c-blocks"},
	}
	for _, tau := range tauSweep {
		bt, err := core.Build(set, core.Options{Tau: tau})
		if err != nil {
			return nil, err
		}
		comp := bt.Compress()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", tau),
			fmt.Sprintf("%.2f%%", 100*comp.CompressionRatio()),
			fmt.Sprint(bt.NumBlocks),
		})
	}
	return t, nil
}

// Fig9b reproduces Figure 9(b): number of c-blocks vs τ on D7.
func (s *Suite) Fig9b() (*Table, error) {
	set, err := s.mappingSet("D7", s.Cfg.M)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9b",
		Title:  "Number of c-blocks vs tau (D7)",
		Note:   "expected shape: steep drop at small tau, then a plateau",
		Header: []string{"tau", "#c-blocks"},
	}
	for _, tau := range tauSweep {
		bt, err := core.Build(set, core.Options{Tau: tau})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", tau), fmt.Sprint(bt.NumBlocks)})
	}
	return t, nil
}

// Fig9c reproduces Figure 9(c): the distribution of c-block sizes on D7 at
// the default τ.
func (s *Suite) Fig9c() (*Table, error) {
	set, err := s.mappingSet("D7", s.Cfg.M)
	if err != nil {
		return nil, err
	}
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	st := bt.Stats()
	t := &Table{
		ID:    "fig9c",
		Title: "Distribution of c-block sizes (D7, tau=0.2)",
		Note: fmt.Sprintf("expected shape: many multi-correspondence blocks; avg=%.2f max=%d (%.1f%% of target nodes)",
			st.AvgSize, st.MaxSize, 100*st.MaxCoverage),
		Header: []string{"#correspondences", "#c-blocks"},
	}
	sizes := make([]int, 0, len(st.SizeHistogram))
	for sz := range st.SizeHistogram {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)
	for _, sz := range sizes {
		t.Rows = append(t.Rows, []string{fmt.Sprint(sz), fmt.Sprint(st.SizeHistogram[sz])})
	}
	return t, nil
}

// Fig9d reproduces Figure 9(d): block-tree construction time per dataset
// for |M| and 2|M|.
func (s *Suite) Fig9d() (*Table, error) {
	t := &Table{
		ID:     "fig9d",
		Title:  fmt.Sprintf("Block-tree construction time Tc (|M|=%d and %d)", s.Cfg.M, 2*s.Cfg.M),
		Note:   "expected shape: construction completes quickly on every dataset; larger |M| costs more",
		Header: []string{"dataset", fmt.Sprintf("Tc(ms) |M|=%d", s.Cfg.M), fmt.Sprintf("Tc(ms) |M|=%d", 2*s.Cfg.M)},
	}
	for _, id := range dataset.IDs() {
		row := []string{id}
		for _, m := range []int{s.Cfg.M, 2 * s.Cfg.M} {
			set, err := s.mappingSet(id, m)
			if err != nil {
				return nil, err
			}
			dur := s.timeIt(func() {
				if _, err := core.Build(set, core.DefaultOptions()); err != nil {
					panic(err)
				}
			})
			row = append(row, ms(dur))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9e reproduces Figure 9(e): construction time vs MAX_B on D7.
func (s *Suite) Fig9e() (*Table, error) {
	set, err := s.mappingSet("D7", s.Cfg.M)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9e",
		Title:  "Construction time Tc vs MAX_B (D7)",
		Note:   "expected shape: Tc grows with MAX_B, then flattens once all c-blocks fit",
		Header: []string{"MAX_B", "Tc(ms)", "#c-blocks"},
	}
	for _, maxB := range []int{20, 60, 100, 160, 200, 260, 300} {
		var bt *core.BlockTree
		dur := s.timeIt(func() {
			var err error
			bt, err = core.Build(set, core.Options{Tau: 0.2, MaxB: maxB})
			if err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(maxB), ms(dur), fmt.Sprint(bt.NumBlocks)})
	}
	return t, nil
}

// queryTimes measures basic and block-tree evaluation for one query.
func (s *Suite) queryTimes(text string, set *mapping.Set, bt *core.BlockTree) (basic, tree time.Duration, err error) {
	doc, err := s.document()
	if err != nil {
		return 0, 0, err
	}
	q, err := core.PrepareQuery(text, set)
	if err != nil {
		return 0, 0, err
	}
	basic = s.timeIt(func() { core.EvaluateBasic(q, set, doc) })
	tree = s.timeIt(func() { core.Evaluate(q, set, doc, bt) })
	return basic, tree, nil
}

// figQueries runs the Table III workload at a given |M| (Figures 9(f) and
// 10(a)).
func (s *Suite) figQueries(id string, m int) (*Table, error) {
	set, err := s.mappingSet("D7", m)
	if err != nil {
		return nil, err
	}
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("PTQ time Tq per query, basic vs block-tree (D7, |M|=%d)", m),
		Note:   "expected shape: block-tree at least matches and mostly beats basic on every query",
		Header: []string{"query", "basic(ms)", "block-tree(ms)", "speedup"},
	}
	var sumB, sumT time.Duration
	for _, q := range dataset.Queries() {
		b, tr, err := s.queryTimes(q.Text, set, bt)
		if err != nil {
			return nil, err
		}
		sumB += b
		sumT += tr
		t.Rows = append(t.Rows, []string{q.ID, ms(b), ms(tr), speedup(b, tr)})
	}
	t.Rows = append(t.Rows, []string{"avg", ms(sumB / 10), ms(sumT / 10), speedup(sumB, sumT)})
	return t, nil
}

func speedup(basic, tree time.Duration) string {
	if tree <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(basic)/float64(tree))
}

// Fig9f reproduces Figure 9(f): per-query Tq at |M|.
func (s *Suite) Fig9f() (*Table, error) { return s.figQueries("fig9f", s.Cfg.M) }

// Fig10a reproduces Figure 10(a): per-query Tq at 5|M|.
func (s *Suite) Fig10a() (*Table, error) { return s.figQueries("fig10a", 5*s.Cfg.M) }

// Fig10b reproduces Figure 10(b): Tq vs τ for Q10 with the block tree.
func (s *Suite) Fig10b() (*Table, error) {
	set, err := s.mappingSet("D7", s.Cfg.M)
	if err != nil {
		return nil, err
	}
	doc, err := s.document()
	if err != nil {
		return nil, err
	}
	q10 := dataset.Queries()[9]
	q, err := core.PrepareQuery(q10.Text, set)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig10b",
		Title:  "Block-tree PTQ time Tq vs tau (D7, Q10)",
		Note:   "expected shape: non-monotone — Tq rises as c-blocks disappear, then falls when few large blocks remain",
		Header: []string{"tau", "Tq(ms)", "#c-blocks"},
	}
	for _, tau := range []float64{0.02, 0.12, 0.22, 0.32, 0.42, 0.52, 0.65} {
		bt, err := core.Build(set, core.Options{Tau: tau})
		if err != nil {
			return nil, err
		}
		dur := s.timeIt(func() { core.Evaluate(q, set, doc, bt) })
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", tau), ms(dur), fmt.Sprint(bt.NumBlocks)})
	}
	return t, nil
}

// Fig10c reproduces Figure 10(c): Tq vs |M| for Q10, basic vs block-tree.
func (s *Suite) Fig10c() (*Table, error) {
	t := &Table{
		ID:     "fig10c",
		Title:  "PTQ time Tq vs |M| (D7, Q10)",
		Note:   "expected shape: both grow with |M|; block-tree stays below basic throughout",
		Header: []string{"|M|", "basic(ms)", "block-tree(ms)", "speedup"},
	}
	q10 := dataset.Queries()[9]
	for _, m := range []int{30, 40, 50, 60, 70, 80, 90, 100, 120, 140, 160, 180, 200} {
		set, err := s.mappingSet("D7", m)
		if err != nil {
			return nil, err
		}
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		b, tr, err := s.queryTimes(q10.Text, set, bt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(m), ms(b), ms(tr), speedup(b, tr)})
	}
	return t, nil
}

// Fig10d reproduces Figure 10(d): top-k PTQ vs normal PTQ for Q10.
func (s *Suite) Fig10d() (*Table, error) {
	set, err := s.mappingSet("D7", s.Cfg.M)
	if err != nil {
		return nil, err
	}
	doc, err := s.document()
	if err != nil {
		return nil, err
	}
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	q10 := dataset.Queries()[9]
	q, err := core.PrepareQuery(q10.Text, set)
	if err != nil {
		return nil, err
	}
	normal := s.timeIt(func() { core.Evaluate(q, set, doc, bt) })
	t := &Table{
		ID:     "fig10d",
		Title:  fmt.Sprintf("Top-k PTQ time vs k (D7, Q10); normal PTQ = %s ms", ms(normal)),
		Note:   "expected shape: top-k well below normal at small k, approaching it as k grows",
		Header: []string{"k", "top-k(ms)", "normal(ms)"},
	}
	for k := 10; k <= s.Cfg.M; k += 10 {
		kk := k
		dur := s.timeIt(func() { core.EvaluateTopK(q, set, doc, bt, kk) })
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), ms(dur), ms(normal)})
	}
	return t, nil
}

// Fig10e reproduces Figure 10(e): top-h generation time, whole-graph Murty
// vs the partitioning approach, per dataset.
func (s *Suite) Fig10e() (*Table, error) {
	t := &Table{
		ID:     "fig10e",
		Title:  fmt.Sprintf("Top-h generation time Tg, murty vs partition (h=%d)", s.Cfg.GenH),
		Note:   "expected shape: partition beats murty on every dataset, by about an order of magnitude on sparse matchings",
		Header: []string{"dataset", "murty(ms)", "partition(ms)", "speedup", "partitions"},
	}
	for _, id := range dataset.IDs() {
		d, err := s.dataset(id)
		if err != nil {
			return nil, err
		}
		tm := s.timeGen(func() {
			if _, err := mapgen.TopH(d.Matching, s.Cfg.GenH, mapgen.Murty); err != nil {
				panic(err)
			}
		})
		tp := s.timeGen(func() {
			if _, err := mapgen.TopH(d.Matching, s.Cfg.GenH, mapgen.Partition); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			id, ms(tm), ms(tp), speedup(tm, tp),
			fmt.Sprint(d.Matching.Stats().NumPartitions),
		})
	}
	return t, nil
}

// Fig10f reproduces Figure 10(f): Tg vs h on D1, murty vs partition, with
// the percentage improvement.
func (s *Suite) Fig10f() (*Table, error) {
	d, err := s.dataset("D1")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig10f",
		Title:  "Top-h generation time Tg vs h (D1)",
		Note:   "expected shape: both grow with h; partition's improvement stays large throughout",
		Header: []string{"h", "murty(ms)", "partition(ms)", "improvement"},
	}
	for h := 100; h <= s.Cfg.MaxH; h += 100 {
		hh := h
		tm := s.timeGen(func() {
			if _, err := mapgen.TopH(d.Matching, hh, mapgen.Murty); err != nil {
				panic(err)
			}
		})
		tp := s.timeGen(func() {
			if _, err := mapgen.TopH(d.Matching, hh, mapgen.Partition); err != nil {
				panic(err)
			}
		})
		impr := 100 * (1 - float64(tp)/float64(tm))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(h), ms(tm), ms(tp), fmt.Sprintf("%.1f%%", impr),
		})
	}
	return t, nil
}

// Scale measures the parallel PTQ engine beyond the paper: speedup of
// basic, block-tree, and top-k evaluation versus worker count on D7's query
// workload (the Table III queries are posed against D7's target schema) at
// both |M| and 5|M|.
func (s *Suite) Scale() (*Table, error) {
	doc, err := s.document()
	if err != nil {
		return nil, err
	}
	maxW := s.Cfg.MaxWorkers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	var sweep []int
	for w := 1; w < maxW; w *= 2 {
		sweep = append(sweep, w)
	}
	sweep = append(sweep, maxW)
	t := &Table{
		ID:    "scale",
		Title: fmt.Sprintf("Parallel engine speedup vs workers (D7, Q10, GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		Note:  "expected shape: near-linear basic speedup up to the core count; block-tree and top-k scale less because c-block sharing already removed work",
		Header: []string{"|M|", "workers", "basic(ms)", "speedup",
			"block-tree(ms)", "speedup", "top-k(ms)", "speedup"},
	}
	q10 := dataset.Queries()[9]
	for _, m := range []int{s.Cfg.M, 5 * s.Cfg.M} {
		set, err := s.mappingSet("D7", m)
		if err != nil {
			return nil, err
		}
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		k := m / 10
		if k < 1 {
			k = 1
		}
		var seqBasic, seqTree, seqTopK time.Duration
		for _, w := range sweep {
			eng := engine.New(engine.Options{Workers: w})
			q, err := eng.Prepare(q10.Text, set)
			if err != nil {
				return nil, err
			}
			basic := s.timeIt(func() { eng.EvaluateBasic(q, set, doc) })
			tree := s.timeIt(func() { eng.Evaluate(q, set, doc, bt) })
			topk := s.timeIt(func() { eng.EvaluateTopK(q, set, doc, bt, k) })
			if w == 1 {
				seqBasic, seqTree, seqTopK = basic, tree, topk
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(m), fmt.Sprint(w),
				ms(basic), speedup(seqBasic, basic),
				ms(tree), speedup(seqTree, tree),
				ms(topk), speedup(seqTopK, topk),
			})
		}
	}
	return t, nil
}

// registry maps experiment names to suite methods.
func (s *Suite) registry() []struct {
	Name string
	Run  func() (*Table, error)
} {
	return []struct {
		Name string
		Run  func() (*Table, error)
	}{
		{"table2", s.Table2},
		{"fig9a", s.Fig9a},
		{"fig9b", s.Fig9b},
		{"fig9c", s.Fig9c},
		{"fig9d", s.Fig9d},
		{"fig9e", s.Fig9e},
		{"fig9f", s.Fig9f},
		{"fig10a", s.Fig10a},
		{"fig10b", s.Fig10b},
		{"fig10c", s.Fig10c},
		{"fig10d", s.Fig10d},
		{"fig10e", s.Fig10e},
		{"fig10f", s.Fig10f},
		{"scale", s.Scale},
	}
}

// Names lists the available experiment identifiers in order.
func (s *Suite) Names() []string {
	reg := s.registry()
	out := make([]string, len(reg))
	for i, r := range reg {
		out[i] = r.Name
	}
	return out
}

// Run executes one experiment by name ("all" runs every one) and writes the
// rendered tables to w.
func (s *Suite) Run(name string, w io.Writer) error {
	return s.run(name, w, (*Table).Render)
}

// RunCSV is Run with CSV output.
func (s *Suite) RunCSV(name string, w io.Writer) error {
	return s.run(name, w, (*Table).RenderCSV)
}

func (s *Suite) run(name string, w io.Writer, render func(*Table, io.Writer) error) error {
	for _, r := range s.registry() {
		if name == "all" || name == r.Name {
			tbl, err := r.Run()
			if err != nil {
				return fmt.Errorf("experiment %s: %w", r.Name, err)
			}
			if err := render(tbl, w); err != nil {
				return err
			}
			if name == r.Name {
				return nil
			}
		}
	}
	if name != "all" {
		return fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(s.Names(), ", "))
	}
	return nil
}
