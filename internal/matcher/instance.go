package matcher

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xmatch/internal/matching"
	"xmatch/internal/schema"
	"xmatch/internal/xmltree"
)

// Instance-based matching: COMA-style matchers optionally refine linguistic
// scores with evidence from sample instances. Given documents conforming to
// the two schemas, each element gets a value signature — the fraction of
// numeric and date-like values and the average text length observed at its
// path — and element pairs with similar signatures get a score boost.

// ValueSignature summarizes the values observed at one schema element.
type ValueSignature struct {
	// Count is the number of non-empty text values observed.
	Count int
	// NumericFrac and DateFrac are the fractions of values parsing as a
	// number or an ISO-style date.
	NumericFrac, DateFrac float64
	// AvgLen is the mean text length.
	AvgLen float64
}

// String renders the signature compactly.
func (v ValueSignature) String() string {
	return fmt.Sprintf("sig{n=%d num=%.2f date=%.2f len=%.1f}", v.Count, v.NumericFrac, v.DateFrac, v.AvgLen)
}

// Signatures computes a value signature per schema element from a document
// conforming to the schema. Elements with no instantiated values get a
// zero signature (Count == 0).
func Signatures(s *schema.Schema, doc *xmltree.Document) []ValueSignature {
	out := make([]ValueSignature, s.Len())
	for _, e := range s.Elements() {
		nodes := doc.NodesByPath(e.Path)
		var sig ValueSignature
		var lenSum int
		for _, n := range nodes {
			if n.Text == "" {
				continue
			}
			sig.Count++
			lenSum += len(n.Text)
			if isNumeric(n.Text) {
				sig.NumericFrac++
			}
			if isDateLike(n.Text) {
				sig.DateFrac++
			}
		}
		if sig.Count > 0 {
			sig.NumericFrac /= float64(sig.Count)
			sig.DateFrac /= float64(sig.Count)
			sig.AvgLen = float64(lenSum) / float64(sig.Count)
		}
		out[e.ID] = sig
	}
	return out
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return err == nil
}

// isDateLike accepts yyyy-mm-dd shapes, the only date format the sample
// generators emit; a production matcher would carry a richer battery.
func isDateLike(s string) bool {
	s = strings.TrimSpace(s)
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return false
	}
	for i, r := range s {
		if i == 4 || i == 7 {
			continue
		}
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// SignatureSimilarity compares two value signatures in [0, 1]. Elements
// whose values look alike (both numeric, both date-like, similar lengths)
// score high; a signature without observations is incomparable and scores
// a neutral 0.5 so absence of instances never vetoes a linguistic match.
func SignatureSimilarity(a, b ValueSignature) float64 {
	if a.Count == 0 || b.Count == 0 {
		return 0.5
	}
	num := 1 - abs(a.NumericFrac-b.NumericFrac)
	date := 1 - abs(a.DateFrac-b.DateFrac)
	maxLen := a.AvgLen
	if b.AvgLen > maxLen {
		maxLen = b.AvgLen
	}
	lenSim := 1.0
	if maxLen > 0 {
		lenSim = 1 - abs(a.AvgLen-b.AvgLen)/maxLen
	}
	return 0.4*num + 0.3*date + 0.3*lenSim
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// MatchWithInstances runs the composite matcher and blends in an
// instance-based signal from sample documents: the final score is
// (1-w)·composite + w·signature-similarity, with w = instanceWeight in
// [0, 1]. The threshold applies to the blended score.
func (m *Matcher) MatchWithInstances(src, tgt *schema.Schema,
	srcDoc, tgtDoc *xmltree.Document, instanceWeight float64) (*matching.Matching, error) {

	if instanceWeight < 0 || instanceWeight > 1 {
		return nil, fmt.Errorf("matcher: instance weight %v outside [0,1]", instanceWeight)
	}
	srcSig := Signatures(src, srcDoc)
	tgtSig := Signatures(tgt, tgtDoc)
	srcTok := m.tokenizeAll(src)
	tgtTok := m.tokenizeAll(tgt)
	var corrs []matching.Correspondence
	for _, te := range tgt.Elements() {
		var cands []matching.Correspondence
		for _, se := range src.Elements() {
			base := m.Score(srcTok[se.ID], tgtTok[te.ID], se, te)
			inst := SignatureSimilarity(srcSig[se.ID], tgtSig[te.ID])
			score := (1-instanceWeight)*base + instanceWeight*inst
			if score >= m.opts.Threshold {
				cands = append(cands, matching.Correspondence{S: se.ID, T: te.ID, Score: score})
			}
		}
		if m.opts.MaxCandidates > 0 && len(cands) > m.opts.MaxCandidates {
			sort.Slice(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
			cands = cands[:m.opts.MaxCandidates]
		}
		corrs = append(corrs, cands...)
	}
	return matching.New(src, tgt, corrs)
}
