package matcher

import (
	"reflect"
	"testing"

	"xmatch/internal/schema"
)

func TestTokenize(t *testing.T) {
	m := New(Options{})
	cases := []struct {
		in   string
		want []string
	}{
		{"ContactName", []string{"contact", "name"}},
		{"CONTACT_NAME", []string{"contact", "name"}},
		{"POLine", []string{"purchaseorder", "line"}},
		{"BuyerPartID", []string{"buyer", "part", "identifier"}},
		{"unit-price", []string{"unit", "price"}},
		{"Qty", []string{"quantity"}},
		{"Address2", []string{"address"}},
		{"EMail", []string{"e", "mail"}},
		{"", nil},
	}
	for _, c := range cases {
		if got := m.Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeCustomSynonyms(t *testing.T) {
	m := New(Options{Synonyms: map[string]string{"kontakt": "contact"}})
	if got := m.Tokenize("Kontakt_Name"); !reflect.DeepEqual(got, []string{"contact", "name"}) {
		t.Errorf("custom synonym not applied: %v", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"order", "order", 0}, {"street", "strasse", 4},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTrigramSimilarity(t *testing.T) {
	if s := trigramSimilarity("order", "order"); s != 1 {
		t.Errorf("identical strings: %v", s)
	}
	if s := trigramSimilarity("order", "xyzzy"); s != 0 {
		t.Errorf("disjoint strings: %v", s)
	}
	mid := trigramSimilarity("quantity", "quantities")
	if mid <= 0.4 || mid >= 1 {
		t.Errorf("related strings: %v", mid)
	}
}

func TestTokenSetSimilarityOrderInvariance(t *testing.T) {
	a := []string{"contact", "name"}
	b := []string{"name", "contact"}
	if s := tokenSetSimilarity(a, b); s != 1 {
		t.Errorf("permuted token sets should score 1, got %v", s)
	}
	if tokenSetSimilarity(nil, b) != 0 || tokenSetSimilarity(a, nil) != 0 {
		t.Error("empty token set should score 0")
	}
}

func mustSpec(t *testing.T, name, spec string) *schema.Schema {
	t.Helper()
	s, err := schema.ParseSpec(name, spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMatchFindsObviousCorrespondences(t *testing.T) {
	src := mustSpec(t, "A", `
Order
  BillToParty
    ContactName
    Street
  Quantity
`)
	tgt := mustSpec(t, "B", `
ORDER
  INVOICE_PARTY
    CONTACT_NAME
  QTY
`)
	m := New(Options{})
	u, err := m.Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	byTarget := map[string][]string{}
	for _, c := range u.Corrs {
		byTarget[tgt.ByID(c.T).Name] = append(byTarget[tgt.ByID(c.T).Name], src.ByID(c.S).Name)
	}
	has := func(tgtName, srcName string) bool {
		for _, s := range byTarget[tgtName] {
			if s == srcName {
				return true
			}
		}
		return false
	}
	if !has("ORDER", "Order") {
		t.Errorf("ORDER should match Order; got %v", byTarget["ORDER"])
	}
	if !has("CONTACT_NAME", "ContactName") {
		t.Errorf("CONTACT_NAME should match ContactName; got %v", byTarget["CONTACT_NAME"])
	}
	if !has("QTY", "Quantity") {
		t.Errorf("QTY should match Quantity (synonym); got %v", byTarget["QTY"])
	}
}

func TestMatchThresholdAndCap(t *testing.T) {
	src := mustSpec(t, "A", "Order\n  ContactName\n  ContactNames\n  ContactNam")
	tgt := mustSpec(t, "B", "ORDER\n  CONTACT_NAME")
	loose, err := New(Options{Threshold: 0.3}).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := New(Options{Threshold: 0.3, MaxCandidates: 1}).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Capacity() <= capped.Capacity() {
		t.Errorf("cap did not reduce capacity: %d vs %d", loose.Capacity(), capped.Capacity())
	}
	perTarget := map[int]int{}
	for _, c := range capped.Corrs {
		perTarget[c.T]++
		if perTarget[c.T] > 1 {
			t.Fatalf("MaxCandidates=1 violated for target %d", c.T)
		}
	}
	strict, err := New(Options{Threshold: 0.99}).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Capacity() >= loose.Capacity() {
		t.Errorf("raising the threshold should shrink the matching: %d vs %d",
			strict.Capacity(), loose.Capacity())
	}
}

func TestScoresWithinUnitInterval(t *testing.T) {
	src := mustSpec(t, "A", "Order\n  BillToParty\n    ContactName\n  POLine\n    Quantity\n    UnitPrice")
	tgt := mustSpec(t, "B", "ORDER\n  PARTY\n    CONTACT_NAME\n  LINE_ITEM\n    QTY\n    UNIT_PRICE")
	u, err := New(Options{Threshold: 0.1}).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if u.Capacity() == 0 {
		t.Fatal("no correspondences found at low threshold")
	}
	for _, c := range u.Corrs {
		if c.Score <= 0 || c.Score > 1 {
			t.Errorf("score %v outside (0,1]", c.Score)
		}
	}
}

func TestFragmentWeightUsesChildStructure(t *testing.T) {
	// Two target candidates with identical names; only the fragment
	// strategy (child-name similarity) separates them.
	src := mustSpec(t, "A", `
Order
  Party
    ContactName
    Street
  Party2
    Qty
    UnitPrice
`)
	tgt := mustSpec(t, "B", `
ORDER
  PARTY
    CONTACT_NAME
    STREET
`)
	plain := New(Options{Threshold: 0.1})
	frag := New(Options{Threshold: 0.1, NameWeight: 0.5, PathWeight: 0.2, StructWeight: 0.1, FragmentWeight: 0.4})
	score := func(m *Matcher, srcPath string) float64 {
		u, err := m.Match(src, tgt)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range u.Corrs {
			if src.ByID(c.S).Path == srcPath && tgt.ByID(c.T).Name == "PARTY" {
				return c.Score
			}
		}
		return 0
	}
	// With fragment weighting, Party (children ContactName/Street) must
	// beat Party2 (children Qty/UnitPrice) for target PARTY more clearly
	// than without it.
	gapPlain := score(plain, "Order.Party") - score(plain, "Order.Party2")
	gapFrag := score(frag, "Order.Party") - score(frag, "Order.Party2")
	if gapFrag <= gapPlain {
		t.Fatalf("fragment strategy did not widen the gap: plain %v, fragment %v", gapPlain, gapFrag)
	}
}
