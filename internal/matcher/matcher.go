// Package matcher is a COMA-style composite schema matcher built from
// scratch: it scores element pairs by combining linguistic similarity
// (tokenization with abbreviation expansion, edit distance and trigram
// overlap), path context similarity, and structural (leaf/inner) affinity,
// then emits the correspondences above a threshold as a schema matching.
//
// The paper consumes COMA++ output; this matcher substitutes for it by
// producing the same artifact — a set of scored correspondences — from the
// same kind of signal (element names, paths and structure). See DESIGN.md.
package matcher

import (
	"sort"
	"strings"

	"xmatch/internal/matching"
	"xmatch/internal/schema"
)

// Options tune the composite matcher.
type Options struct {
	// NameWeight, PathWeight and StructWeight combine the three signals;
	// they are normalized internally. Defaults: 0.6, 0.3, 0.1.
	NameWeight, PathWeight, StructWeight float64
	// FragmentWeight, when positive, adds COMA's fragment strategy (the
	// "f" option of the paper's Table II): the similarity of the two
	// elements' child-name token sets. It participates in the weight
	// normalization like the other signals.
	FragmentWeight float64
	// Threshold discards correspondences scoring below it. Default 0.55.
	Threshold float64
	// MaxCandidates caps the correspondences kept per target element
	// (highest scores win). 0 means no cap.
	MaxCandidates int
	// Synonyms maps a token to its expansion, merged over the built-in
	// abbreviation table (e.g. "qty" -> "quantity").
	Synonyms map[string]string
}

func (o *Options) normalize() {
	if o.NameWeight == 0 && o.PathWeight == 0 && o.StructWeight == 0 {
		o.NameWeight, o.PathWeight, o.StructWeight = 0.6, 0.3, 0.1
	}
	sum := o.NameWeight + o.PathWeight + o.StructWeight + o.FragmentWeight
	o.NameWeight /= sum
	o.PathWeight /= sum
	o.StructWeight /= sum
	o.FragmentWeight /= sum
	if o.Threshold == 0 {
		o.Threshold = 0.55
	}
}

// builtinSynonyms is a small e-commerce abbreviation dictionary of the kind
// COMA++ ships with.
var builtinSynonyms = map[string]string{
	"po":    "purchaseorder",
	"qty":   "quantity",
	"quan":  "quantity",
	"addr":  "address",
	"amt":   "amount",
	"num":   "number",
	"no":    "number",
	"id":    "identifier",
	"ident": "identifier",
	"up":    "unitprice",
	"uom":   "unitofmeasure",
	"desc":  "description",
	"descr": "description",
	"tel":   "telephone",
	"phone": "telephone",
	"cty":   "city",
	"ctry":  "country",
	"st":    "street",
	"org":   "organization",
	"corp":  "corporation",
	"inv":   "invoice",
	"ord":   "order",
	"del":   "delivery",
	"dlv":   "delivery",
	"recv":  "receiving",
	"ref":   "reference",
}

// Matcher scores element pairs between two schemas.
type Matcher struct {
	opts Options
}

// New returns a matcher with the given options (zero value = defaults).
func New(opts Options) *Matcher {
	opts.normalize()
	merged := make(map[string]string, len(builtinSynonyms)+len(opts.Synonyms))
	for k, v := range builtinSynonyms {
		merged[k] = v
	}
	for k, v := range opts.Synonyms {
		merged[strings.ToLower(k)] = strings.ToLower(v)
	}
	opts.Synonyms = merged
	return &Matcher{opts: opts}
}

// Match computes the schema matching between source and target: every pair
// scoring at least the threshold becomes a correspondence, optionally
// capped per target element.
func (m *Matcher) Match(src, tgt *schema.Schema) (*matching.Matching, error) {
	srcTok := m.tokenizeAll(src)
	tgtTok := m.tokenizeAll(tgt)
	var corrs []matching.Correspondence
	for _, te := range tgt.Elements() {
		var cands []matching.Correspondence
		for _, se := range src.Elements() {
			score := m.Score(srcTok[se.ID], tgtTok[te.ID], se, te)
			if score >= m.opts.Threshold {
				cands = append(cands, matching.Correspondence{S: se.ID, T: te.ID, Score: score})
			}
		}
		if m.opts.MaxCandidates > 0 && len(cands) > m.opts.MaxCandidates {
			sort.Slice(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
			cands = cands[:m.opts.MaxCandidates]
		}
		corrs = append(corrs, cands...)
	}
	return matching.New(src, tgt, corrs)
}

// elemTokens caches the token sets of an element's own name and of its
// ancestor path.
type elemTokens struct {
	name     []string
	path     []string
	children []string
}

func (m *Matcher) tokenizeAll(s *schema.Schema) []elemTokens {
	out := make([]elemTokens, s.Len())
	for _, e := range s.Elements() {
		out[e.ID].name = m.Tokenize(e.Name)
		var path []string
		for p := e.Parent; p != nil; p = p.Parent {
			path = append(path, m.Tokenize(p.Name)...)
		}
		out[e.ID].path = path
		var children []string
		for _, c := range e.Children {
			children = append(children, m.Tokenize(c.Name)...)
		}
		out[e.ID].children = children
	}
	return out
}

// Score combines the three similarity signals for one element pair.
func (m *Matcher) Score(st, tt elemTokens, se, te *schema.Element) float64 {
	name := tokenSetSimilarity(st.name, tt.name)
	path := tokenSetSimilarity(st.path, tt.path)
	structural := 0.0
	if se.IsLeaf() == te.IsLeaf() {
		structural = 1.0
	}
	s := m.opts.NameWeight*name + m.opts.PathWeight*path + m.opts.StructWeight*structural
	if m.opts.FragmentWeight > 0 {
		s += m.opts.FragmentWeight * tokenSetSimilarity(st.children, tt.children)
	}
	if s > 1 { // guard against floating-point drift in the weight sum
		s = 1
	}
	return s
}

// Tokenize splits an element name on case transitions, digits and
// punctuation, lowercases the tokens and applies synonym expansion.
func (m *Matcher) Tokenize(name string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := strings.ToLower(cur.String())
		if exp, ok := m.opts.Synonyms[tok]; ok {
			tok = exp
		}
		tokens = append(tokens, tok)
		cur.Reset()
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == '.' || r == ' ' || r == '/':
			flush()
		case r >= '0' && r <= '9':
			flush() // digits separate tokens and are dropped
		case r >= 'A' && r <= 'Z':
			// New token at lower->Upper transitions and at the last
			// capital of an acronym run followed by a lowercase
			// ("POLine" -> "po", "line").
			if i > 0 {
				prev := runes[i-1]
				nextLower := i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z'
				if prev >= 'a' && prev <= 'z' || (prev >= 'A' && prev <= 'Z' && nextLower) {
					flush()
				}
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}

// tokenSetSimilarity computes a symmetric soft token-set similarity: each
// token is matched to its most similar counterpart, and the best-match
// scores are averaged over both directions.
func tokenSetSimilarity(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	dir := func(xs, ys []string) float64 {
		var total float64
		for _, x := range xs {
			best := 0.0
			for _, y := range ys {
				if s := tokenSimilarity(x, y); s > best {
					best = s
				}
			}
			total += best
		}
		return total / float64(len(xs))
	}
	return (dir(a, b) + dir(b, a)) / 2
}

// tokenSimilarity blends normalized edit distance and trigram overlap; an
// exact match scores 1.
func tokenSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	ed := 1 - float64(levenshtein(a, b))/float64(maxInt(len(a), len(b)))
	tg := trigramSimilarity(a, b)
	s := 0.5*ed + 0.5*tg
	if s < 0 {
		return 0
	}
	return s
}

// levenshtein computes the classic edit distance with a rolling row.
func levenshtein(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(minInt(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// trigramSimilarity is the Dice coefficient over padded character trigrams.
func trigramSimilarity(a, b string) float64 {
	ta := trigrams(a)
	tb := trigrams(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	common := 0
	for t := range ta {
		if tb[t] {
			common++
		}
	}
	return 2 * float64(common) / float64(len(ta)+len(tb))
}

func trigrams(s string) map[string]bool {
	padded := "##" + s + "##"
	out := make(map[string]bool, len(padded))
	for i := 0; i+3 <= len(padded); i++ {
		out[padded[i:i+3]] = true
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
