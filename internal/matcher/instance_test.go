package matcher

import (
	"testing"

	"xmatch/internal/xmltree"
)

func TestSignatures(t *testing.T) {
	s := mustSpec(t, "S", "Order\n  Qty\n  Date\n  Name")
	root := xmltree.NewRoot("Order")
	root.AddChild("Qty").AddText("5")
	root.AddChild("Qty").AddText("17")
	root.AddChild("Date").AddText("2009-03-01")
	root.AddChild("Name").AddText("Alice Cooper")
	doc := xmltree.New(root)

	sigs := Signatures(s, doc)
	qty := sigs[s.ByPath("Order.Qty").ID]
	if qty.Count != 2 || qty.NumericFrac != 1 || qty.DateFrac != 0 {
		t.Fatalf("qty signature = %v", qty)
	}
	date := sigs[s.ByPath("Order.Date").ID]
	if date.DateFrac != 1 || date.NumericFrac != 0 {
		t.Fatalf("date signature = %v", date)
	}
	name := sigs[s.ByPath("Order.Name").ID]
	if name.NumericFrac != 0 || name.DateFrac != 0 || name.AvgLen != 12 {
		t.Fatalf("name signature = %v", name)
	}
	order := sigs[s.ByPath("Order").ID]
	if order.Count != 0 {
		t.Fatalf("order (no text) signature = %v", order)
	}
}

func TestIsDateLike(t *testing.T) {
	good := []string{"2009-03-01", "1999-12-31"}
	bad := []string{"2009-3-1", "20090301", "2009-03-01T00", "abcd-ef-gh", ""}
	for _, s := range good {
		if !isDateLike(s) {
			t.Errorf("isDateLike(%q) = false", s)
		}
	}
	for _, s := range bad {
		if isDateLike(s) {
			t.Errorf("isDateLike(%q) = true", s)
		}
	}
}

func TestSignatureSimilarity(t *testing.T) {
	num := ValueSignature{Count: 5, NumericFrac: 1, AvgLen: 3}
	num2 := ValueSignature{Count: 9, NumericFrac: 1, AvgLen: 4}
	text := ValueSignature{Count: 5, NumericFrac: 0, AvgLen: 20}
	empty := ValueSignature{}
	if s := SignatureSimilarity(num, num2); s < 0.8 {
		t.Errorf("similar numeric signatures scored %v", s)
	}
	if s := SignatureSimilarity(num, text); s > 0.5 {
		t.Errorf("numeric vs text scored %v", s)
	}
	if s := SignatureSimilarity(num, empty); s != 0.5 {
		t.Errorf("missing instances should be neutral, got %v", s)
	}
}

func TestMatchWithInstancesDisambiguates(t *testing.T) {
	// Two source candidates with identical names; only instances tell
	// which one carries numeric values like the target element.
	src := mustSpec(t, "A", "Order\n  ValueA\n  ValueB")
	tgt := mustSpec(t, "B", "ORDER\n  AMOUNT_VALUE")
	srcRoot := xmltree.NewRoot("Order")
	srcRoot.AddChild("ValueA").AddText("19.90")
	srcRoot.AddChild("ValueB").AddText("mostly words here")
	srcDoc := xmltree.New(srcRoot)
	tgtRoot := xmltree.NewRoot("ORDER")
	tgtRoot.AddChild("AMOUNT_VALUE").AddText("7.25")
	tgtDoc := xmltree.New(tgtRoot)

	m := New(Options{Threshold: 0.2})
	u, err := m.MatchWithInstances(src, tgt, srcDoc, tgtDoc, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var scoreA, scoreB float64
	for _, c := range u.Corrs {
		if tgt.ByID(c.T).Name != "AMOUNT_VALUE" {
			continue
		}
		switch src.ByID(c.S).Name {
		case "ValueA":
			scoreA = c.Score
		case "ValueB":
			scoreB = c.Score
		}
	}
	if scoreA <= scoreB {
		t.Fatalf("instances should prefer the numeric ValueA: %v vs %v", scoreA, scoreB)
	}
}

func TestMatchWithInstancesValidation(t *testing.T) {
	src := mustSpec(t, "A", "Order")
	tgt := mustSpec(t, "B", "ORDER")
	doc := xmltree.New(xmltree.NewRoot("Order"))
	doc2 := xmltree.New(xmltree.NewRoot("ORDER"))
	m := New(Options{})
	if _, err := m.MatchWithInstances(src, tgt, doc, doc2, -0.1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := m.MatchWithInstances(src, tgt, doc, doc2, 1.1); err == nil {
		t.Error("weight > 1 accepted")
	}
	if _, err := m.MatchWithInstances(src, tgt, doc, doc2, 0.3); err != nil {
		t.Errorf("valid call failed: %v", err)
	}
}

func TestSignatureString(t *testing.T) {
	if (ValueSignature{}).String() == "" {
		t.Error("empty signature should render")
	}
}
