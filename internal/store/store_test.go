package store

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"xmatch/internal/dataset"
	"xmatch/internal/mapgen"
)

func TestSchemaRoundTrip(t *testing.T) {
	d := dataset.MustLoad("D7")
	var buf bytes.Buffer
	if err := SaveSchema(&buf, d.Target); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSchema(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Target.Name || back.Len() != d.Target.Len() {
		t.Fatalf("schema changed: %s/%d", back.Name, back.Len())
	}
	if !reflect.DeepEqual(back.Paths(), d.Target.Paths()) {
		t.Fatal("paths changed through round trip")
	}
}

func TestMatchingRoundTrip(t *testing.T) {
	d := dataset.MustLoad("D3")
	var buf bytes.Buffer
	if err := SaveMatching(&buf, d.Matching); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMatching(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Capacity() != d.Matching.Capacity() {
		t.Fatalf("capacity changed: %d", back.Capacity())
	}
	for i := range back.Corrs {
		if back.Corrs[i] != d.Matching.Corrs[i] {
			t.Fatalf("correspondence %d changed", i)
		}
	}
	// The reloaded matching must be usable downstream.
	set, err := mapgen.TopH(back, 10, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 10 {
		t.Fatalf("reloaded matching yields %d mappings", set.Len())
	}
}

func TestSetRoundTrip(t *testing.T) {
	d := dataset.MustLoad("D5")
	set, err := mapgen.TopH(d.Matching, 25, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != set.Len() {
		t.Fatalf("len changed: %d", back.Len())
	}
	for i := range set.Mappings {
		a, b := set.Mappings[i], back.Mappings[i]
		if !reflect.DeepEqual(a.Pairs, b.Pairs) {
			t.Fatalf("mapping %d pairs changed", i)
		}
		if math.Abs(a.Prob-b.Prob) > 1e-12 {
			t.Fatalf("mapping %d prob changed: %v vs %v", i, a.Prob, b.Prob)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC estofthefile............"),
		[]byte("XMATCH1\n garbage after the magic"),
	}
	for i, data := range cases {
		if _, err := LoadSchema(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	d := dataset.MustLoad("D1")
	var buf bytes.Buffer
	if err := SaveSchema(&buf, d.Source); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMatching(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("schema file accepted as matching")
	}
	if _, err := LoadSet(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("schema file accepted as mapping set")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	d := dataset.MustLoad("D1")
	var buf bytes.Buffer
	if err := SaveMatching(&buf, d.Matching); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(magic) + 2, len(data) / 2, len(data) - 3} {
		if _, err := LoadMatching(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsCorruptedDTO(t *testing.T) {
	d := dataset.MustLoad("D1")
	var buf bytes.Buffer
	if err := SaveMatching(&buf, d.Matching); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip bytes in the payload region; either gob decoding or matching
	// validation must catch it (a silent success with altered content is
	// the only failure mode we cannot accept — check content equality).
	for _, pos := range []int{len(data) - 10, len(data) - 50} {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0xFF
		back, err := LoadMatching(bytes.NewReader(corrupted))
		if err != nil {
			continue
		}
		same := back.Capacity() == d.Matching.Capacity()
		if same {
			for i := range back.Corrs {
				if back.Corrs[i] != d.Matching.Corrs[i] {
					same = false
					break
				}
			}
		}
		if !same {
			continue // corruption detected as content change, not silent
		}
	}
}
