package store

import (
	"encoding/gob"
	"io"
)

// Catalog is the manifest the xmatchd daemon loads its serving catalog
// from: an ordered list of named dataset entries, each either a built-in
// Table II workload (regenerated deterministically at load time) or a
// pointer to a persisted mapping-set blob. The manifest itself is stored in
// the same versioned binary format as the other store blobs.
type Catalog struct {
	Entries []CatalogEntry
}

// CatalogEntry describes one serving dataset. Exactly one of Dataset and
// SetPath must be set.
type CatalogEntry struct {
	// Name is the dataset's serving name, unique within the catalog.
	Name string

	// Dataset selects a built-in Table II workload ("D1".."D10").
	Dataset string
	// Mappings is the top-h possible-mapping count for built-in entries;
	// 0 means 100 (the paper's default |M|).
	Mappings int

	// SetPath locates a mapping-set blob (SaveSet format) for blob-backed
	// entries, relative to the manifest's directory.
	SetPath string
	// DocPath optionally locates an XML document for blob-backed entries;
	// when empty a deterministic single-instance document is generated
	// from the set's source schema.
	DocPath string
	// IndexPath optionally locates a positional-index blob (SaveIndex
	// format) built over the entry's document, relative to the manifest's
	// directory; when empty the index is built at catalog-prepare time.
	// Manifest format v2; v1 manifests decode with it empty.
	IndexPath string
	// EditLogPath optionally locates the entry's append-only edit log
	// (CreateEditLog/AppendEditBatch format), relative to the manifest's
	// directory. At catalog-prepare time the log — if the file exists —
	// is replayed over the entry's pristine document, restoring its
	// edited state; /v1/admin/mutate appends every applied batch to it.
	// Without it, mutations are in-memory only and vanish on reload.
	// Manifest format v3; older manifests decode with it empty.
	EditLogPath string

	// Shards is the number of member documents the entry's collection is
	// sharded into. 0 and 1 both mean a single document. Values above 1
	// require a built-in entry: the corpus members are regenerated
	// deterministically (dataset.OrderCorpus) with DocNodes as the total
	// node budget across members. Manifest format v5; older manifests
	// decode with it 0.
	Shards int

	// DocNodes is the synthetic document size (built-in entries);
	// 0 means 3473, the paper's Order.xml.
	DocNodes int
	// DocSeed seeds the document generator.
	DocSeed int64
	// Tau is the block-tree confidence threshold; 0 means the default 0.2.
	Tau float64
}

// Validate checks the manifest's structural invariants: at least one entry,
// unique non-empty names, and exactly one source per entry. Violations are
// *FormatError.
func (c *Catalog) Validate() error {
	if len(c.Entries) == 0 {
		return formatErrorf("catalog has no entries")
	}
	seen := make(map[string]bool, len(c.Entries))
	for i, e := range c.Entries {
		if e.Name == "" {
			return formatErrorf("catalog entry %d has no name", i)
		}
		if seen[e.Name] {
			return formatErrorf("catalog entry %d: duplicate name %q", i, e.Name)
		}
		seen[e.Name] = true
		if (e.Dataset == "") == (e.SetPath == "") {
			return formatErrorf("catalog entry %q: exactly one of Dataset and SetPath must be set", e.Name)
		}
		if e.Mappings < 0 || e.DocNodes < 0 || e.Tau < 0 || e.Tau > 1 {
			return formatErrorf("catalog entry %q: negative size or tau outside [0,1]", e.Name)
		}
		if e.IndexPath != "" && e.Dataset != "" {
			// A built-in entry regenerates its document at load time, so a
			// persisted index could only ever match by accident.
			return formatErrorf("catalog entry %q: IndexPath requires a blob-backed entry", e.Name)
		}
		if e.Shards < 0 {
			return formatErrorf("catalog entry %q: negative shard count", e.Name)
		}
		if e.Shards > 1 && e.Dataset == "" {
			// Sharded collections regenerate their members; a blob-backed
			// entry ships exactly one document (or one generated instance).
			return formatErrorf("catalog entry %q: Shards > 1 requires a built-in entry", e.Name)
		}
	}
	return nil
}

// SaveCatalog writes a catalog manifest.
func SaveCatalog(w io.Writer, c *Catalog) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := writeHeader(w, "catalog"); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(c)
}

// LoadCatalog reads and validates a manifest written by SaveCatalog.
// Corrupted or structurally invalid manifests yield a *FormatError.
func LoadCatalog(r io.Reader) (*Catalog, error) {
	dec, err := readHeader(r, "catalog")
	if err != nil {
		return nil, err
	}
	var c Catalog
	if err := dec.Decode(&c); err != nil {
		return nil, dec.classify(err, "decoding catalog")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
