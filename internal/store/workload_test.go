package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleWorkloadRecords() []WorkloadRecord {
	return []WorkloadRecord{
		{Fingerprint: 0xdead, Dataset: "orders", Pattern: "order[date]/item", Mode: "full", Epoch: 3, LatencyUs: 1200, Digest: 0xbeef},
		{Fingerprint: 0xfeed, Dataset: "orders", Pattern: "order/item", Mode: "topk", K: 5, Epoch: 3, LatencyUs: 800, Digest: 0xcafe},
		{Fingerprint: 0xf00d, Dataset: "small", Pattern: "a/b", Mode: "compact", Epoch: 1, LatencyUs: 50, Digest: 0x1234},
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateWorkload(&buf, 4); err != nil {
		t.Fatal(err)
	}
	recs := sampleWorkloadRecords()
	for _, rec := range recs {
		if _, err := AppendWorkloadRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	wl, err := LoadWorkload(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if wl.Torn {
		t.Fatal("clean capture reported torn")
	}
	if wl.SampleN != 4 {
		t.Fatalf("SampleN = %d, want 4", wl.SampleN)
	}
	if len(wl.Records) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(wl.Records), len(recs))
	}
	for i, rec := range recs {
		if wl.Records[i] != rec {
			t.Fatalf("record %d = %+v, want %+v", i, wl.Records[i], rec)
		}
	}
	if wl.ValidSize != int64(buf.Len()) {
		t.Fatalf("ValidSize = %d, want %d", wl.ValidSize, buf.Len())
	}
}

func TestWorkloadTornTail(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateWorkload(&buf, 1); err != nil {
		t.Fatal(err)
	}
	recs := sampleWorkloadRecords()
	if _, err := AppendWorkloadRecord(&buf, recs[0]); err != nil {
		t.Fatal(err)
	}
	whole := buf.Len()
	if _, err := AppendWorkloadRecord(&buf, recs[1]); err != nil {
		t.Fatal(err)
	}
	// Tear the final record at every byte offset: the loader must keep
	// the first record, report Torn, and point ValidSize at the boundary.
	full := buf.Bytes()
	for cut := whole + 1; cut < len(full); cut++ {
		wl, err := LoadWorkload(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !wl.Torn {
			t.Fatalf("cut %d: not reported torn", cut)
		}
		if len(wl.Records) != 1 || wl.Records[0] != recs[0] {
			t.Fatalf("cut %d: records = %+v", cut, wl.Records)
		}
		if wl.ValidSize != int64(whole) {
			t.Fatalf("cut %d: ValidSize = %d, want %d", cut, wl.ValidSize, whole)
		}
	}
}

func TestWorkloadRejectsWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateEditLog(&buf); err != nil {
		t.Fatal(err)
	}
	var fe *FormatError
	if _, err := LoadWorkload(bytes.NewReader(buf.Bytes())); !errors.As(err, &fe) {
		t.Fatalf("LoadWorkload(editlog) err = %v, want FormatError", err)
	}
	if err := EncodeWorkloadRecordMustFail(); err == nil {
		t.Fatal("empty pattern must not encode")
	}
}

// EncodeWorkloadRecordMustFail exercises the empty-pattern guard.
func EncodeWorkloadRecordMustFail() error {
	_, err := EncodeWorkloadRecord(WorkloadRecord{})
	return err
}

func TestProfilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "capture.profiles")
	entries := []ProfileEntry{
		{Dataset: "orders", Shard: 0, Path: "order.item", Evals: 10, Candidates: 500, UsefulSurvivors: 120, ReachSurvivors: 40},
		{Dataset: "orders", Shard: 1, Path: "order.date", Evals: 10, Candidates: 300, UsefulSurvivors: 90, ReachSurvivors: 33},
	}
	if err := WriteProfilesFile(path, entries); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfilesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
	// Atomic replace: a second write must fully supersede the first.
	if err := WriteProfilesFile(path, entries[:1]); err != nil {
		t.Fatal(err)
	}
	if got, err = LoadProfilesFile(path); err != nil || len(got) != 1 {
		t.Fatalf("after rewrite: %d entries (%v), want 1", len(got), err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestProfilesRejectsWorkloadBlob(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateWorkload(&buf, 1); err != nil {
		t.Fatal(err)
	}
	var fe *FormatError
	if _, err := LoadProfiles(bytes.NewReader(buf.Bytes())); !errors.As(err, &fe) {
		t.Fatalf("LoadProfiles(workload) err = %v, want FormatError", err)
	}
}
