package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"xmatch/internal/delta"
	"xmatch/internal/xmltree"
)

func sampleBatches() [][]delta.Edit {
	return [][]delta.Edit{
		{
			{Op: delta.OpSetText, Path: "r.a", Text: "2"},
			{Op: delta.OpInsert, Path: "r", XML: "<c>x</c>", Pos: -1},
		},
		{
			{Op: delta.OpRename, Start: 17, Label: "b2"},
		},
		{
			{Op: delta.OpDelete, Path: "r.c"},
		},
	}
}

// sampleRecords frames sampleBatches as epoch-dense records above base.
func sampleRecords(base uint64) []EditRecord {
	batches := sampleBatches()
	recs := make([]EditRecord, len(batches))
	for i, b := range batches {
		recs[i] = EditRecord{Epoch: base + uint64(i) + 1, Edits: b}
	}
	return recs
}

func TestEditLogRoundTrip(t *testing.T) {
	for _, base := range []uint64{0, 41} {
		var buf bytes.Buffer
		if err := CreateEditLogAt(&buf, base); err != nil {
			t.Fatal(err)
		}
		want := sampleRecords(base)
		for _, rec := range want {
			if err := AppendEditRecord(&buf, rec); err != nil {
				t.Fatal(err)
			}
		}
		got, err := LoadEditLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Base != base || got.Torn {
			t.Fatalf("base %d: loaded base %d, torn %v", base, got.Base, got.Torn)
		}
		if !reflect.DeepEqual(got.Records, want) {
			t.Fatalf("round trip changed the log:\ngot  %+v\nwant %+v", got.Records, want)
		}
		if got.Epoch() != base+uint64(len(want)) {
			t.Fatalf("log epoch %d, want %d", got.Epoch(), base+uint64(len(want)))
		}
		if got.ValidSize != int64(buf.Len()) {
			t.Fatalf("ValidSize %d, blob is %d bytes", got.ValidSize, buf.Len())
		}
		// An empty log (envelope only) loads as no records at the base.
		var empty bytes.Buffer
		if err := CreateEditLogAt(&empty, base); err != nil {
			t.Fatal(err)
		}
		got, err = LoadEditLog(bytes.NewReader(empty.Bytes()))
		if err != nil || len(got.Records) != 0 || got.Epoch() != base {
			t.Fatalf("empty log: %v, %+v", err, got)
		}
	}
}

func TestEditLogEpochDensity(t *testing.T) {
	// Records must advance the epoch by exactly one each; a gap or
	// repetition means the log and the state it claims to reproduce have
	// diverged, which replay must refuse rather than paper over.
	for name, epochs := range map[string][]uint64{
		"gap":        {1, 3},
		"repeat":     {1, 1},
		"regression": {2, 1},
		"wrong base": {5, 6},
	} {
		var buf bytes.Buffer
		if err := CreateEditLog(&buf); err != nil {
			t.Fatal(err)
		}
		batch := sampleBatches()[0]
		for _, e := range epochs {
			if err := AppendEditRecord(&buf, EditRecord{Epoch: e, Edits: batch}); err != nil {
				t.Fatal(err)
			}
		}
		_, err := LoadEditLog(bytes.NewReader(buf.Bytes()))
		var fe *FormatError
		if err == nil || !errors.As(err, &fe) {
			t.Errorf("%s: sparse epochs accepted: %v", name, err)
		}
	}
}

// TestEditLogFileAppendAcrossOpens mirrors the daemon's usage: every
// applied batch reopens the file and appends, and the log must replay to
// the same document state the live handle reached.
func TestEditLogFileAppendAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "orders.editlog")
	// Missing file: empty history.
	if got, err := LoadEditLogFile(path); err != nil || len(got.Records) != 0 || got.Base != 0 {
		t.Fatalf("missing file: %v, %+v", err, got)
	}
	doc, err := xmltree.ParseString(`<r><a>1</a><b>9</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	h := delta.Open(doc)
	batches := [][]delta.Edit{
		{{Op: delta.OpSetText, Path: "r.a", Text: "2"}},
		{{Op: delta.OpInsert, Path: "r", XML: "<c><d>deep</d></c>", Pos: 0}},
		{{Op: delta.OpDelete, Path: "r.b"}, {Op: delta.OpRename, Path: "r.c", Label: "e"}},
	}
	for _, b := range batches {
		if _, err := h.ApplyLogged(b, func(epoch uint64, es []delta.Edit) error {
			return AppendEditRecordFile(path, EditRecord{Epoch: epoch, Edits: es}, true)
		}); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := LoadEditLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed.Records) != len(batches) {
		t.Fatalf("%d records replayed, want %d", len(replayed.Records), len(batches))
	}
	doc2, err := xmltree.ParseString(`<r><a>1</a><b>9</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	h2 := delta.Open(doc2)
	for _, rec := range replayed.Records {
		snap, err := h2.Apply(rec.Edits)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Epoch != rec.Epoch {
			t.Fatalf("replay reached epoch %d, record says %d", snap.Epoch, rec.Epoch)
		}
	}
	if h2.Snapshot().Doc.String() != h.Snapshot().Doc.String() {
		t.Fatalf("replayed document diverged:\n%s\nvs\n%s", h2.Snapshot().Doc, h.Snapshot().Doc)
	}
}

func TestEditLogCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateEditLog(&buf); err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(0)
	for _, rec := range recs {
		if err := AppendEditRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	good := buf.Bytes()

	// A flipped byte inside a record's string payload can decode into a
	// different but shape-valid batch, so only structural damage —
	// envelope corruption, kind confusion, implausible framing — is
	// detectable and fatal.
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XMATCH9\n"), good[len(magic):]...),
	}
	var cat bytes.Buffer
	if err := SaveCatalog(&cat, testCatalog()); err != nil {
		t.Fatal(err)
	}
	cases["wrong kind"] = cat.Bytes()

	for name, data := range cases {
		_, err := LoadEditLog(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: load succeeded", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not a *FormatError", name, err, err)
		}
	}

	// A record carrying an invalid batch (bad shape) must be rejected
	// even though it decodes.
	var bad bytes.Buffer
	if err := CreateEditLog(&bad); err != nil {
		t.Fatal(err)
	}
	if err := AppendEditRecord(&bad, EditRecord{Epoch: 1, Edits: []delta.Edit{{Op: delta.OpDelete, Path: "r"}}}); err != nil {
		t.Fatal(err)
	}
	// Hand-corrupt the op by round-tripping through the record layer.
	raw := bad.Bytes()
	idx := bytes.LastIndex(raw, []byte("delete"))
	if idx < 0 {
		t.Fatal("op bytes not found")
	}
	copy(raw[idx:], "deIete")
	if _, err := LoadEditLog(bytes.NewReader(raw)); err == nil {
		t.Error("invalid op in log accepted")
	}

	// Appending an empty batch is refused.
	if err := AppendEditRecord(&bytes.Buffer{}, EditRecord{Epoch: 1}); err == nil {
		t.Error("empty batch appended")
	}
}

// TestEditLogTornTailMatrix truncates a log at every byte offset inside
// its final record — every possible footprint of a crash mid-append —
// and requires each one to load as a benign torn tail: the completed
// records intact, the torn record dropped, ValidSize naming the exact
// repair point.
func TestEditLogTornTailMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateEditLog(&buf); err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(0)
	var tail int // offset where the final record begins
	for i, rec := range recs {
		if i == len(recs)-1 {
			tail = buf.Len()
		}
		if err := AppendEditRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	good := buf.Bytes()

	for cut := tail; cut < len(good); cut++ {
		got, err := LoadEditLog(bytes.NewReader(good[:cut]))
		if err != nil {
			t.Fatalf("cut at %d/%d: torn tail not tolerated: %v", cut, len(good), err)
		}
		if cut == tail {
			// Truncation exactly at a record boundary is not torn at all.
			if got.Torn {
				t.Errorf("cut at boundary %d flagged torn", cut)
			}
		} else if !got.Torn {
			t.Errorf("cut at %d/%d not flagged torn", cut, len(good))
		}
		if len(got.Records) != len(recs)-1 {
			t.Errorf("cut at %d: %d records survived, want %d", cut, len(got.Records), len(recs)-1)
			continue
		}
		if !reflect.DeepEqual(got.Records, recs[:len(recs)-1]) {
			t.Errorf("cut at %d: surviving records changed", cut)
		}
		if got.ValidSize != int64(tail) {
			t.Errorf("cut at %d: ValidSize %d, want %d", cut, got.ValidSize, tail)
		}
	}

	// The whole blob, untouched, is not torn.
	if got, err := LoadEditLog(bytes.NewReader(good)); err != nil || got.Torn {
		t.Fatalf("intact log: %v, torn %v", err, got.Torn)
	}
}

// TestEditLogRecoverAndResume exercises the append-after-crash sequence
// at every truncation offset: recover (which must physically truncate
// the torn bytes), then append the batch again, then load clean. Without
// the recovery step the re-append would land after torn garbage and turn
// a benign tear into mid-log corruption — the durability bug this
// package refuses to allow.
func TestEditLogRecoverAndResume(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateEditLog(&buf); err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(0)
	var tail int
	for i, rec := range recs {
		if i == len(recs)-1 {
			tail = buf.Len()
		}
		if err := AppendEditRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	good := buf.Bytes()
	dir := t.TempDir()

	for cut := tail; cut < len(good); cut++ {
		path := filepath.Join(dir, "log")
		if err := os.WriteFile(path, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lg, err := RecoverEditLogFile(path)
		if err != nil {
			t.Fatalf("cut at %d: recover: %v", cut, err)
		}
		if lg.Torn {
			t.Fatalf("cut at %d: recover left the log torn", cut)
		}
		if st, err := os.Stat(path); err != nil || st.Size() != int64(tail) {
			t.Fatalf("cut at %d: file is %d bytes after recovery, want %d", cut, st.Size(), tail)
		}
		// Resume: re-append the batch the tear ate, then load clean.
		last := recs[len(recs)-1]
		if err := AppendEditRecordFile(path, last, true); err != nil {
			t.Fatalf("cut at %d: resume append: %v", cut, err)
		}
		final, err := LoadEditLogFile(path)
		if err != nil || final.Torn {
			t.Fatalf("cut at %d: post-resume load: %v, torn %v", cut, err, final.Torn)
		}
		if !reflect.DeepEqual(final.Records, recs) {
			t.Fatalf("cut at %d: post-resume records diverged", cut)
		}
	}

	// Appending to a torn file without recovering first strands the new
	// record behind garbage: depending on where the tear fell, the load
	// either fails outright or silently drops the acknowledged record.
	// Either way the log no longer reproduces the acknowledged history —
	// exactly the corruption recovery exists to prevent.
	for cut := tail + 1; cut < len(good); cut++ {
		path := filepath.Join(dir, "unrepaired")
		if err := os.WriteFile(path, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := AppendEditRecordFile(path, recs[len(recs)-1], false); err != nil {
			t.Fatal(err)
		}
		lg, err := LoadEditLogFile(path)
		if err == nil && !lg.Torn && len(lg.Records) == len(recs) {
			t.Fatalf("cut at %d: append after torn garbage produced an apparently healthy log", cut)
		}
	}
}

func TestWriteEditLogFile(t *testing.T) {
	// Atomic rewrite at a nonzero base: the checkpoint truncation path.
	path := filepath.Join(t.TempDir(), "log")
	recs := sampleRecords(7)
	frames := make([][]byte, len(recs))
	for i, rec := range recs {
		frame, err := EncodeEditRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = frame
	}
	if err := WriteEditLogFile(path, 7, frames); err != nil {
		t.Fatal(err)
	}
	lg, err := LoadEditLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Base != 7 || !reflect.DeepEqual(lg.Records, recs) {
		t.Fatalf("rewritten log diverged: base %d, %+v", lg.Base, lg.Records)
	}
	// Rewriting to empty resets the history to the base alone.
	if err := WriteEditLogFile(path, 10, nil); err != nil {
		t.Fatal(err)
	}
	if lg, err = LoadEditLogFile(path); err != nil || lg.Base != 10 || len(lg.Records) != 0 {
		t.Fatalf("reset log: %v, %+v", err, lg)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

func TestEditLogVersioning(t *testing.T) {
	// An edit log claiming a future version is rejected.
	var future bytes.Buffer
	if err := writeHeaderVersion(&future, "editlog", version+1); err != nil {
		t.Fatal(err)
	}
	_, err := LoadEditLog(bytes.NewReader(future.Bytes()))
	var fe *FormatError
	if err == nil || !errors.As(err, &fe) {
		t.Errorf("future edit log accepted or misclassified: %v", err)
	}
	// Catalog entries carrying EditLogPath survive a save/load cycle.
	c := &Catalog{Entries: []CatalogEntry{{Name: "a", SetPath: "a.set", EditLogPath: "a.editlog"}}}
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].EditLogPath != "a.editlog" {
		t.Errorf("EditLogPath lost: %+v", got.Entries[0])
	}
	// Appends to a file created by a foreign writer with a stale size-0
	// header path: AppendEditRecordFile on an empty existing file writes
	// the envelope first, based at the record's predecessor epoch.
	path := filepath.Join(t.TempDir(), "x.editlog")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rec := EditRecord{Epoch: 5, Edits: []delta.Edit{{Op: delta.OpSetText, Path: "r", Text: "t"}}}
	if err := AppendEditRecordFile(path, rec, false); err != nil {
		t.Fatal(err)
	}
	if lg, err := LoadEditLogFile(path); err != nil || lg.Base != 4 || len(lg.Records) != 1 {
		t.Fatalf("append to empty file: %v, %+v", err, lg)
	}
	// A record with no epoch cannot seed a fresh file.
	if err := AppendEditRecordFile(filepath.Join(t.TempDir(), "y"), EditRecord{Edits: rec.Edits}, false); err == nil {
		t.Error("epoch-less record seeded a log")
	}
}
