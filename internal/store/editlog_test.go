package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"xmatch/internal/delta"
	"xmatch/internal/xmltree"
)

func sampleBatches() [][]delta.Edit {
	return [][]delta.Edit{
		{
			{Op: delta.OpSetText, Path: "r.a", Text: "2"},
			{Op: delta.OpInsert, Path: "r", XML: "<c>x</c>", Pos: -1},
		},
		{
			{Op: delta.OpRename, Start: 17, Label: "b2"},
		},
		{
			{Op: delta.OpDelete, Path: "r.c"},
		},
	}
}

func TestEditLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateEditLog(&buf); err != nil {
		t.Fatal(err)
	}
	want := sampleBatches()
	for _, b := range want {
		if err := AppendEditBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadEditLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the log:\ngot  %+v\nwant %+v", got, want)
	}
	// An empty log (envelope only) loads as no batches.
	var empty bytes.Buffer
	if err := CreateEditLog(&empty); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadEditLog(bytes.NewReader(empty.Bytes())); err != nil || len(got) != 0 {
		t.Fatalf("empty log: %v, %d batches", err, len(got))
	}
}

// TestEditLogFileAppendAcrossOpens mirrors the daemon's usage: every
// applied batch reopens the file and appends, and the log must replay to
// the same document state the live handle reached.
func TestEditLogFileAppendAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "orders.editlog")
	// Missing file: empty history.
	if got, err := LoadEditLogFile(path); err != nil || got != nil {
		t.Fatalf("missing file: %v, %v", err, got)
	}
	doc, err := xmltree.ParseString(`<r><a>1</a><b>9</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	h := delta.Open(doc)
	batches := [][]delta.Edit{
		{{Op: delta.OpSetText, Path: "r.a", Text: "2"}},
		{{Op: delta.OpInsert, Path: "r", XML: "<c><d>deep</d></c>", Pos: 0}},
		{{Op: delta.OpDelete, Path: "r.b"}, {Op: delta.OpRename, Path: "r.c", Label: "e"}},
	}
	for _, b := range batches {
		if _, err := h.ApplyLogged(b, func(es []delta.Edit) error {
			return AppendEditBatchFile(path, es)
		}); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := LoadEditLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, batches) {
		t.Fatalf("log replay order changed: %+v", replayed)
	}
	doc2, err := xmltree.ParseString(`<r><a>1</a><b>9</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	h2 := delta.Open(doc2)
	for _, b := range replayed {
		if _, err := h2.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	if h2.Snapshot().Doc.String() != h.Snapshot().Doc.String() {
		t.Fatalf("replayed document diverged:\n%s\nvs\n%s", h2.Snapshot().Doc, h.Snapshot().Doc)
	}
}

func TestEditLogCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := CreateEditLog(&buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range sampleBatches() {
		if err := AppendEditBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	good := buf.Bytes()

	// A flipped byte inside a record's string payload can decode into a
	// different but shape-valid batch, so only structural damage —
	// envelope corruption, kind confusion, implausible framing — is
	// detectable and fatal.
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XMATCH9\n"), good[len(magic):]...),
	}
	var cat bytes.Buffer
	if err := SaveCatalog(&cat, testCatalog()); err != nil {
		t.Fatal(err)
	}
	cases["wrong kind"] = cat.Bytes()

	for name, data := range cases {
		_, err := LoadEditLog(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: load succeeded", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not a *FormatError", name, err, err)
		}
	}

	// A torn tail — the footprint of a crash mid-append — drops exactly
	// the torn (and therefore never-acknowledged) final record and keeps
	// everything before it, whether the tear hit the payload or the
	// length prefix itself.
	for name, data := range map[string][]byte{
		"torn payload": good[:len(good)-3],
		"torn varint":  good[:len(good)-1],
	} {
		got, err := LoadEditLog(bytes.NewReader(data))
		if err != nil {
			t.Errorf("%s: torn tail not tolerated: %v", name, err)
			continue
		}
		if len(got) != len(sampleBatches())-1 {
			t.Errorf("%s: %d batches survived, want %d", name, len(got), len(sampleBatches())-1)
		}
		if !reflect.DeepEqual(got, sampleBatches()[:len(got)]) {
			t.Errorf("%s: surviving batches changed", name)
		}
	}

	// A record carrying an invalid batch (bad shape) must be rejected
	// even though it decodes.
	var bad bytes.Buffer
	if err := CreateEditLog(&bad); err != nil {
		t.Fatal(err)
	}
	if err := AppendEditBatch(&bad, []delta.Edit{{Op: delta.OpDelete, Path: "r"}}); err != nil {
		t.Fatal(err)
	}
	// Hand-corrupt the op by round-tripping through the record layer.
	raw := bad.Bytes()
	idx := bytes.LastIndex(raw, []byte("delete"))
	if idx < 0 {
		t.Fatal("op bytes not found")
	}
	copy(raw[idx:], "deIete")
	if _, err := LoadEditLog(bytes.NewReader(raw)); err == nil {
		t.Error("invalid op in log accepted")
	}

	// Appending an empty batch is refused.
	if err := AppendEditBatch(&bytes.Buffer{}, nil); err == nil {
		t.Error("empty batch appended")
	}
}

func TestEditLogV3Versioning(t *testing.T) {
	// An edit log claiming a future version is rejected.
	var future bytes.Buffer
	if err := writeHeaderVersion(&future, "editlog", version+1); err != nil {
		t.Fatal(err)
	}
	_, err := LoadEditLog(bytes.NewReader(future.Bytes()))
	var fe *FormatError
	if err == nil || !errors.As(err, &fe) {
		t.Errorf("future edit log accepted or misclassified: %v", err)
	}
	// Catalog entries carrying EditLogPath survive a save/load cycle.
	c := &Catalog{Entries: []CatalogEntry{{Name: "a", SetPath: "a.set", EditLogPath: "a.editlog"}}}
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].EditLogPath != "a.editlog" {
		t.Errorf("EditLogPath lost: %+v", got.Entries[0])
	}
	// Appends to a file created by a foreign writer with a stale size-0
	// header path: AppendEditBatchFile on an empty existing file writes
	// the envelope first.
	path := filepath.Join(t.TempDir(), "x.editlog")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendEditBatchFile(path, []delta.Edit{{Op: delta.OpSetText, Path: "r", Text: "t"}}); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadEditLogFile(path); err != nil || len(got) != 1 {
		t.Fatalf("append to empty file: %v, %d batches", err, len(got))
	}
}
