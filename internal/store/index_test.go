package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"xmatch/internal/index"
	"xmatch/internal/xmltree"
)

func indexDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(`<PO>
		<Line><Num>1</Num><Qty>3</Qty></Line>
		<Line><Num>2</Num><Qty>7</Qty></Line>
	</PO>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestIndexGoldenRoundTrip: save → load → identical postings, and the
// encoded bytes must be stable across two saves.
func TestIndexGoldenRoundTrip(t *testing.T) {
	doc := indexDoc(t)
	ix := index.Build(doc)
	var buf, buf2 bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(&buf2, ix); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two saves of the same index produced different bytes")
	}
	got, err := LoadIndex(bytes.NewReader(buf.Bytes()), doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ix.Paths() {
		if !reflect.DeepEqual(got.Postings(p), ix.Postings(p)) {
			t.Errorf("postings for %q differ after round trip", p)
		}
	}
	if !reflect.DeepEqual(got.ValuePostings("PO.Line.Qty", "7"), ix.ValuePostings("PO.Line.Qty", "7")) {
		t.Error("value postings differ after round trip")
	}
	st := got.Stats()
	if st.Postings != doc.Len() || st.ResidentBytes <= 0 {
		t.Errorf("reloaded stats implausible: %+v", st)
	}
}

// TestIndexCorruption: corrupted blobs — damaged envelope, flipped payload
// bytes, or snapshots disagreeing with the document — are *FormatError.
func TestIndexCorruption(t *testing.T) {
	doc := indexDoc(t)
	var buf bytes.Buffer
	if err := SaveIndex(&buf, index.Build(doc)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":           {},
		"truncated magic": good[:4],
		"flipped magic":   append([]byte("XMATCH9\n"), good[len(magic):]...),
		"truncated body":  good[:len(good)-7],
	}
	// Flip one byte deep in the gob payload.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-10] ^= 0xff
	cases["flipped payload byte"] = flipped

	for name, data := range cases {
		_, err := LoadIndex(bytes.NewReader(data), doc)
		if err == nil {
			// A single flipped byte can survive gob decoding; it must then
			// fail snapshot verification instead. Anything else is a bug.
			t.Errorf("%s: load succeeded", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not a *FormatError", name, err, err)
		}
	}

	// Wrong kind: a catalog blob is not an index.
	var cat bytes.Buffer
	if err := SaveCatalog(&cat, testCatalog()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(bytes.NewReader(cat.Bytes()), doc); err == nil {
		t.Error("loading a catalog blob as an index succeeded")
	} else {
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("wrong kind: error %v is not a *FormatError", err)
		}
	}
}

// TestIndexStaleDocument: a well-formed blob built over a *different*
// document must be rejected as a *FormatError — the guard that makes
// catalog reloads safe when a document changes under its index blob.
func TestIndexStaleDocument(t *testing.T) {
	doc := indexDoc(t)
	var buf bytes.Buffer
	if err := SaveIndex(&buf, index.Build(doc)); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"different shape": `<PO><Line><Num>1</Num></Line></PO>`,
		"different text":  `<PO><Line><Num>1</Num><Qty>3</Qty></Line><Line><Num>2</Num><Qty>8</Qty></Line></PO>`,
		"renamed element": `<PO><Line><Num>1</Num><Qty>3</Qty></Line><Row><Num>2</Num><Qty>7</Qty></Row></PO>`,
	}
	for name, xml := range cases {
		other, err := xmltree.ParseString(xml)
		if err != nil {
			t.Fatal(err)
		}
		_, err = LoadIndex(bytes.NewReader(buf.Bytes()), other)
		if err == nil {
			t.Errorf("%s: stale index blob accepted", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a *FormatError", name, err)
		}
	}
}

// TestCatalogV1Compatibility: a manifest written with the version-1
// envelope (the pre-IndexPath format) must still load, with IndexPath
// empty; and future versions must be rejected.
func TestCatalogV1Compatibility(t *testing.T) {
	man := &Catalog{Entries: []CatalogEntry{
		{Name: "orders", Dataset: "D7", Mappings: 100},
		{Name: "frozen", SetPath: "blobs/frozen.set"},
	}}
	var buf bytes.Buffer
	if err := writeHeaderVersion(&buf, "catalog", 1); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&buf).Encode(man); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 manifest rejected: %v", err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Errorf("v1 manifest round trip mismatch: %+v", got)
	}
	if got.Entries[0].IndexPath != "" {
		t.Errorf("v1 entry grew an IndexPath: %q", got.Entries[0].IndexPath)
	}

	var future bytes.Buffer
	if err := writeHeaderVersion(&future, "catalog", version+1); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&future).Encode(man); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCatalog(bytes.NewReader(future.Bytes()))
	var fe *FormatError
	if err == nil || !errors.As(err, &fe) {
		t.Errorf("future version accepted or misclassified: %v", err)
	}
}

func TestCatalogIndexPathValidation(t *testing.T) {
	// IndexPath on a built-in entry is invalid (the document is
	// regenerated at load time); on a blob-backed entry it is fine.
	bad := &Catalog{Entries: []CatalogEntry{{Name: "a", Dataset: "D1", IndexPath: "a.idx"}}}
	var fe *FormatError
	if err := bad.Validate(); err == nil || !errors.As(err, &fe) {
		t.Errorf("IndexPath on built-in entry: %v", err)
	}
	good := &Catalog{Entries: []CatalogEntry{{Name: "a", SetPath: "a.set", IndexPath: "a.idx"}}}
	if err := good.Validate(); err != nil {
		t.Errorf("IndexPath on blob-backed entry rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, good); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].IndexPath != "a.idx" {
		t.Errorf("IndexPath lost in round trip: %+v", got.Entries[0])
	}
}
