package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"xmatch/internal/delta"
)

// Edit-log blobs (format version 3) persist a dataset's mutation history
// as an append-only sequence of applied edit batches. Replaying the log
// over the dataset's pristine document (in order, through delta.Apply)
// restores its edited state exactly, so a serving daemon can restart — or
// hot-reload — without re-deriving edits or re-shipping mutated XML.
//
// Unlike the other store blobs, an edit log grows in place: batches are
// appended to an existing file without rewriting it. A single gob stream
// cannot be appended to (each Encoder emits its own type descriptors), so
// the payload after the usual magic + header envelope is a sequence of
// self-contained records, each a uvarint length prefix followed by one
// gob-encoded batch. A torn tail — a crash mid-append — therefore damages
// only the final record, and surfaces as a *FormatError on load rather
// than as silently missing edits.

// editBatch is one persisted record: the edits of one applied batch.
type editBatch struct {
	Edits []delta.Edit
}

// CreateEditLog writes an empty edit-log blob (envelope only).
func CreateEditLog(w io.Writer) error {
	return writeHeader(w, "editlog")
}

// AppendEditBatch appends one batch record to an edit log previously
// started with CreateEditLog. The writer must be positioned at the end of
// the log (an *os.File opened with O_APPEND, typically). The frame and
// payload go down in a single Write, so a crash leaves at worst one torn
// record at the tail — never an intact record after garbage.
func AppendEditBatch(w io.Writer, edits []delta.Edit) error {
	if len(edits) == 0 {
		return fmt.Errorf("store: edit log: empty batch")
	}
	var record bytes.Buffer
	record.Write(make([]byte, binary.MaxVarintLen64)) // frame placeholder
	if err := gob.NewEncoder(&record).Encode(editBatch{Edits: edits}); err != nil {
		return fmt.Errorf("store: encoding edit batch: %w", err)
	}
	payloadLen := record.Len() - binary.MaxVarintLen64
	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(payloadLen))
	buf := record.Bytes()
	copy(buf[binary.MaxVarintLen64-n:], frame[:n])
	_, err := w.Write(buf[binary.MaxVarintLen64-n:])
	return err
}

// LoadEditLog reads an edit log, returning the applied batches in append
// order. A final record truncated by end-of-file — the footprint of a
// crash mid-append — is dropped silently: the mutate path logs before it
// publishes, so a torn tail is by construction a batch that was never
// acknowledged. Everything else — a damaged envelope, an undecodable or
// implausible record, a batch that fails delta.Validate — is a
// *FormatError; genuine read failures stay unclassified.
func LoadEditLog(r io.Reader) ([][]delta.Edit, error) {
	dec, err := readHeader(r, "editlog")
	if err != nil {
		return nil, err
	}
	// The envelope decoder reads exact message bounds (trackingReader is
	// a ByteReader), so the record stream continues right where the
	// header ended.
	br := dec.tr
	var batches [][]delta.Edit
	for {
		size, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return batches, nil
		}
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) && dec.tr.err == nil {
				return batches, nil // torn tail: unacknowledged append
			}
			return nil, dec.classify(err, fmt.Sprintf("edit log record %d: length prefix", len(batches)))
		}
		if size == 0 || size > 64<<20 {
			return nil, formatErrorf("edit log record %d: implausible size %d", len(batches), size)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			if (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)) && dec.tr.err == nil {
				return batches, nil // torn tail: unacknowledged append
			}
			return nil, dec.classify(err, fmt.Sprintf("edit log record %d: torn record", len(batches)))
		}
		var b editBatch
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&b); err != nil {
			return nil, dec.classify(err, fmt.Sprintf("edit log record %d: decoding", len(batches)))
		}
		if err := delta.Validate(b.Edits); err != nil {
			return nil, &FormatError{Msg: fmt.Sprintf("edit log record %d: %v", len(batches), err), Err: err}
		}
		batches = append(batches, b.Edits)
	}
}

// AppendEditBatchFile appends one batch to the edit-log file at path,
// creating the file (with its envelope) if it does not exist. The append
// is a single write on a file opened with O_APPEND; if it fails partway
// (disk full, say) the file is truncated back to its pre-append size, so
// a failed — and therefore unacknowledged — append cannot leave garbage
// in front of later successful records.
func AppendEditBatchFile(path string, edits []delta.Edit) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	pre := st.Size()
	if pre == 0 {
		if err := CreateEditLog(f); err != nil {
			return err
		}
		if st, err := f.Stat(); err == nil {
			pre = st.Size()
		}
	}
	if err := AppendEditBatch(f, edits); err != nil {
		// Best effort: a tail we cannot truncate is still recoverable on
		// load (torn-tail tolerance) as long as no later append lands
		// after it; returning the error makes the mutate fail, so the
		// batch is not acknowledged either way.
		_ = f.Truncate(pre)
		return err
	}
	return nil
}

// LoadEditLogFile reads the edit-log file at path. A missing file is an
// empty history, not an error — a dataset that has never been mutated has
// no log yet.
func LoadEditLogFile(path string) ([][]delta.Edit, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEditLog(f)
}
