package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"xmatch/internal/delta"
)

// Edit-log blobs persist a dataset's mutation history as an append-only
// sequence of applied edit batches. Replaying the log over the dataset's
// pristine document (in order, through delta.Apply) restores its edited
// state exactly, so a serving daemon can restart — or hot-reload —
// without re-deriving edits or re-shipping mutated XML. The same framing
// doubles as the replication wire format: a primary ships a suffix of its
// log to followers as a literal edit-log blob (see internal/replica).
//
// Unlike the other store blobs, an edit log grows in place: records are
// appended to an existing file without rewriting it. A single gob stream
// cannot be appended to (each Encoder emits its own type descriptors), so
// the payload after the usual magic + header envelope is a sequence of
// self-contained records, each a uvarint length prefix followed by one
// gob-encoded record. A torn tail — a crash mid-append — therefore
// damages only the final record.
//
// Format version 6 adds two things. Each record carries the epoch its
// batch produced, so a shipped record names the snapshot it reproduces;
// and the envelope is followed by a meta message carrying the log's base
// epoch — the epoch of the state the first record applies on top of.
// A pristine log has base 0; a log reset by a checkpoint has the
// checkpoint's epoch as its base, which is how replay knows the records
// compacted into the checkpoint are gone on purpose. Records must then be
// epoch-dense: record i carries epoch base+i+1. Pre-v6 logs decode with
// base 0 and records implicitly numbered 1..n.

// EditRecord is one persisted or shipped record: the edits of one applied
// batch, tagged with the snapshot epoch the batch produced.
type EditRecord struct {
	Epoch uint64
	Edits []delta.Edit
}

// editLogMeta is the gob message between the envelope and the record
// stream of a v6+ log.
type editLogMeta struct {
	Base uint64
}

// EditLog is a loaded edit log: the base epoch plus the records that
// survived, in append order.
type EditLog struct {
	Base    uint64
	Records []EditRecord

	// Torn reports that the file ended inside the final record — the
	// footprint of a crash mid-append. The torn bytes are dropped (the
	// mutate path logs before it publishes, so a torn tail is by
	// construction a batch that was never acknowledged), but the file
	// still holds them: an append landing after torn garbage would turn a
	// benign torn tail into fatal mid-log corruption, so writers must
	// repair the file first (RecoverEditLogFile) before resuming appends.
	Torn bool
	// ValidSize is the byte length of the longest valid prefix of the
	// blob: the envelope, meta, and every complete record. Truncating the
	// file to ValidSize repairs a torn tail.
	ValidSize int64
}

// Epoch returns the epoch of the state the log reproduces when fully
// replayed: the base for an empty log, else the last record's epoch.
func (l *EditLog) Epoch() uint64 {
	if n := len(l.Records); n > 0 {
		return l.Records[n-1].Epoch
	}
	return l.Base
}

// CreateEditLog writes an empty edit-log blob with base epoch 0.
func CreateEditLog(w io.Writer) error {
	return CreateEditLogAt(w, 0)
}

// CreateEditLogAt writes an empty edit-log blob whose first record will
// apply on top of epoch base — the envelope of a log reset by a
// checkpoint at that epoch.
func CreateEditLogAt(w io.Writer, base uint64) error {
	if err := writeHeader(w, "editlog"); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(editLogMeta{Base: base})
}

// EncodeEditRecord renders one record in its framed on-disk/wire form:
// uvarint length prefix followed by the gob-encoded record. The frame is
// what AppendEditRecord writes and what the replication stream ships, so
// a record is encoded once and reused byte-for-byte.
func EncodeEditRecord(rec EditRecord) ([]byte, error) {
	if len(rec.Edits) == 0 {
		return nil, fmt.Errorf("store: edit log: empty batch")
	}
	var record bytes.Buffer
	record.Write(make([]byte, binary.MaxVarintLen64)) // frame placeholder
	if err := gob.NewEncoder(&record).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encoding edit record: %w", err)
	}
	payloadLen := record.Len() - binary.MaxVarintLen64
	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(payloadLen))
	buf := record.Bytes()
	copy(buf[binary.MaxVarintLen64-n:], frame[:n])
	return buf[binary.MaxVarintLen64-n:], nil
}

// AppendEditRecord appends one record to an edit log previously started
// with CreateEditLog[At]. The writer must be positioned at the end of the
// log (an *os.File opened with O_APPEND, typically). The frame and
// payload go down in a single Write, so a crash leaves at worst one torn
// record at the tail — never an intact record after garbage.
func AppendEditRecord(w io.Writer, rec EditRecord) error {
	frame, err := EncodeEditRecord(rec)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// LoadEditLog reads an edit log, returning the base epoch and the applied
// records in append order. A final record truncated by end-of-file is
// dropped and reported via Torn/ValidSize rather than failing the load.
// Everything else — a damaged envelope, an undecodable or implausible
// record, a batch that fails delta.Validate, an epoch out of sequence —
// is a *FormatError; genuine read failures stay unclassified.
func LoadEditLog(r io.Reader) (*EditLog, error) {
	dec, err := readHeader(r, "editlog")
	if err != nil {
		return nil, err
	}
	log := &EditLog{}
	if dec.version >= 6 {
		var meta editLogMeta
		if err := dec.Decode(&meta); err != nil {
			return nil, dec.classify(err, "edit log meta")
		}
		log.Base = meta.Base
	}
	// The envelope decoder reads exact message bounds (trackingReader is
	// a ByteReader), so the record stream continues right where the
	// meta ended, and the reader's byte count is the stream position.
	br := dec.tr
	log.ValidSize = br.n
	for {
		size, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return log, nil
		}
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) && br.err == nil {
				log.Torn = true // torn tail: unacknowledged append
				return log, nil
			}
			return nil, dec.classify(err, fmt.Sprintf("edit log record %d: length prefix", len(log.Records)))
		}
		if size == 0 || size > 64<<20 {
			return nil, formatErrorf("edit log record %d: implausible size %d", len(log.Records), size)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			if (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)) && br.err == nil {
				log.Torn = true // torn tail: unacknowledged append
				return log, nil
			}
			return nil, dec.classify(err, fmt.Sprintf("edit log record %d: torn record", len(log.Records)))
		}
		var rec EditRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return nil, dec.classify(err, fmt.Sprintf("edit log record %d: decoding", len(log.Records)))
		}
		if err := delta.Validate(rec.Edits); err != nil {
			return nil, &FormatError{Msg: fmt.Sprintf("edit log record %d: %v", len(log.Records), err), Err: err}
		}
		want := log.Base + uint64(len(log.Records)) + 1
		if rec.Epoch == 0 {
			rec.Epoch = want // pre-v6 record: epochs were implicit
		} else if rec.Epoch != want {
			return nil, formatErrorf("edit log record %d: epoch %d out of sequence (want %d, base %d)",
				len(log.Records), rec.Epoch, want, log.Base)
		}
		log.Records = append(log.Records, rec)
		log.ValidSize = br.n
	}
}

// AppendEditRecordFile appends one record to the edit-log file at path,
// creating the file (with its envelope, at the record's predecessor
// epoch) if it does not exist or is empty. The append is a single write
// on a file opened with O_APPEND; if it fails partway (disk full, say)
// the file is truncated back to its pre-append size, so a failed — and
// therefore unacknowledged — append cannot leave garbage in front of
// later successful records. With sync set the record is fsynced before
// success is reported, so an acknowledged batch survives a process or
// machine crash.
//
// The caller is responsible for having repaired any torn tail first
// (RecoverEditLogFile): appending after torn garbage would strand an
// intact record behind undecodable bytes, which LoadEditLog rightly
// refuses as mid-log corruption.
func AppendEditRecordFile(path string, rec EditRecord, sync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	pre := st.Size()
	if pre == 0 {
		if rec.Epoch == 0 {
			return fmt.Errorf("store: edit log %s: record carries no epoch", path)
		}
		if err := CreateEditLogAt(f, rec.Epoch-1); err != nil {
			return err
		}
		if st, err := f.Stat(); err == nil {
			pre = st.Size()
		}
	}
	frame, err := EncodeEditRecord(rec)
	if err != nil {
		return err
	}
	if keep, herr := hookAppendFrame(path, frame); herr != nil {
		// Injected fault. A torn variant (keep > 0) leaves a partial frame
		// on disk and skips the truncate repair — the state a crash
		// mid-write leaves; a clean variant writes nothing. Either way the
		// append fails, so the batch is not acknowledged.
		if keep > 0 {
			if keep > len(frame) {
				keep = len(frame)
			}
			_, _ = f.Write(frame[:keep])
		}
		return herr
	}
	if _, err := f.Write(frame); err != nil {
		// Best effort: a tail we cannot truncate is still recoverable on
		// load (torn-tail tolerance) as long as no later append lands
		// after it; returning the error makes the mutate fail, so the
		// batch is not acknowledged either way.
		_ = f.Truncate(pre)
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			_ = f.Truncate(pre)
			return err
		}
	}
	return nil
}

// LoadEditLogFile reads the edit-log file at path. A missing file is an
// empty history (base 0), not an error — a dataset that has never been
// mutated has no log yet.
func LoadEditLogFile(path string) (*EditLog, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return &EditLog{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEditLog(f)
}

// RecoverEditLogFile loads the edit-log file at path and, if it ends in a
// torn record, truncates the file back to its last complete record so
// appends may safely resume. This is the mandatory first step before
// writing to a log that may have seen a crash; load-only callers can keep
// using LoadEditLogFile. A missing file is an empty history. Mid-log
// corruption still fails with a *FormatError — truncation only ever eats
// bytes that were never acknowledged.
func RecoverEditLogFile(path string) (*EditLog, error) {
	log, err := LoadEditLogFile(path)
	if err != nil {
		return nil, err
	}
	if log.Torn {
		if err := os.Truncate(path, log.ValidSize); err != nil {
			return nil, fmt.Errorf("store: repairing torn edit log %s: %w", path, err)
		}
		log.Torn = false
	}
	return log, nil
}

// WriteEditLogFile atomically replaces the edit-log file at path with a
// fresh log at the given base epoch holding the given pre-framed records
// (EncodeEditRecord output). The new log is written to a temporary file,
// synced, and renamed over path, so a crash leaves either the old log or
// the new one — never a hybrid. Checkpointing uses this to truncate the
// shipped history.
func WriteEditLogFile(path string, base uint64, frames [][]byte) error {
	if err := hookWriteFile(path); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	err = CreateEditLogAt(f, base)
	for _, frame := range frames {
		if err != nil {
			break
		}
		_, err = f.Write(frame)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
