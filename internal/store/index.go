package store

import (
	"encoding/gob"
	"io"

	"xmatch/internal/index"
	"xmatch/internal/xmltree"
)

// Index blobs persist the positional document index of internal/index:
// the per-path region postings and value keys, without node pointers.
// Format version 4 writes the delta-compressed payload
// (index.CompactSnapshot): per-path uvarint (startDelta, extent) blocks
// with persisted block-level skip pointers, one level per path, and
// start-delta streams for value keys — typically a fraction of the flat
// v2/v3 arrays, and the same layout the resident index keeps. Versions 2
// and 3 (flat gob arrays) still load.
//
// Loading re-binds the snapshot to a live document and verifies every
// posting against it, so a corrupted blob — or a stale one whose document
// has since changed — surfaces as a *FormatError instead of silently
// mis-answering queries; for v4 the compressed structure itself (skip
// pointers, varint framing, counts) is validated before the document
// check. Catalog manifests reference index blobs through
// CatalogEntry.IndexPath.

// SaveIndex writes a positional index blob in the current format. Two
// saves of the same index produce identical bytes (snapshot entries are
// sorted and the compression is deterministic), so blobs can be
// content-addressed or diffed.
func SaveIndex(w io.Writer, ix *index.Index) error {
	if err := writeHeader(w, "index"); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(ix.Snapshot().Compact())
}

// saveIndexLegacy writes the pre-v4 flat payload under an explicit
// envelope version — the writer old builds shipped; kept so migration
// tests exercise genuine old-format blobs.
func saveIndexLegacy(w io.Writer, ix *index.Index, v int) error {
	if err := writeHeaderVersion(w, "index", v); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(ix.Snapshot())
}

// LoadIndex reads an index blob written by SaveIndex (any supported
// version) and re-binds it to doc. Envelope violations, undecodable
// payloads, invalid compressed structure (truncated blocks, bad varints,
// skip pointers out of range), and snapshots that disagree with the
// document are *FormatError; genuine read failures stay unclassified.
func LoadIndex(r io.Reader, doc *xmltree.Document) (*index.Index, error) {
	dec, err := readHeader(r, "index")
	if err != nil {
		return nil, err
	}
	var snap *index.Snapshot
	if dec.version >= 4 {
		var cs index.CompactSnapshot
		if err := dec.Decode(&cs); err != nil {
			return nil, dec.classify(err, "decoding index")
		}
		snap, err = cs.Expand()
		if err != nil {
			return nil, &FormatError{Msg: "index blob: " + err.Error(), Err: err}
		}
	} else {
		snap = new(index.Snapshot)
		if err := dec.Decode(snap); err != nil {
			return nil, dec.classify(err, "decoding index")
		}
	}
	ix, err := index.FromSnapshot(doc, snap)
	if err != nil {
		return nil, &FormatError{Msg: "index blob disagrees with document: " + err.Error(), Err: err}
	}
	return ix, nil
}
