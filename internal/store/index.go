package store

import (
	"encoding/gob"
	"io"

	"xmatch/internal/index"
	"xmatch/internal/xmltree"
)

// Index blobs (format version 2) persist the positional document index of
// internal/index: the per-path region postings and value keys, without
// node pointers. Loading re-binds the snapshot to a live document and
// verifies every posting against it, so a corrupted blob — or a stale one
// whose document has since changed — surfaces as a *FormatError instead of
// silently mis-answering queries. Catalog manifests reference index blobs
// through CatalogEntry.IndexPath.

// SaveIndex writes a positional index blob. Two saves of the same index
// produce identical bytes (snapshot entries are sorted), so blobs can be
// content-addressed or diffed.
func SaveIndex(w io.Writer, ix *index.Index) error {
	if err := writeHeader(w, "index"); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(ix.Snapshot())
}

// LoadIndex reads an index blob written by SaveIndex and re-binds it to
// doc. Envelope violations, undecodable payloads, and snapshots that
// disagree with the document are *FormatError; genuine read failures stay
// unclassified.
func LoadIndex(r io.Reader, doc *xmltree.Document) (*index.Index, error) {
	dec, err := readHeader(r, "index")
	if err != nil {
		return nil, err
	}
	var snap index.Snapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, dec.classify(err, "decoding index")
	}
	ix, err := index.FromSnapshot(doc, &snap)
	if err != nil {
		return nil, &FormatError{Msg: "index blob disagrees with document: " + err.Error(), Err: err}
	}
	return ix, nil
}
