// Package store persists the library's artifacts — schemas, schema
// matchings, and possible-mapping sets — in a versioned binary format
// (gob-encoded with a magic header), so that expensive steps of the
// pipeline (matching, top-h generation) can be computed once and reloaded.
// Block trees are deliberately not persisted: construction from a mapping
// set is deterministic and takes well under a millisecond (Figure 9(d)),
// so they are rebuilt on load.
package store

import (
	"encoding/gob"
	"fmt"
	"io"

	"xmatch/internal/mapping"
	"xmatch/internal/matching"
	"xmatch/internal/schema"
)

const (
	magic = "XMATCH1\n"
	// version is the blob format written by this build. Version 2 added
	// index blobs and the optional index-blob reference on catalog
	// entries; version 3 added edit-log blobs and the optional edit-log
	// reference; version 4 switched index blobs to the delta-compressed
	// postings payload (varint blocks with persisted skip pointers —
	// index.CompactSnapshot); version 5 added the per-entry shard count on
	// catalog manifests (CatalogEntry.Shards); version 6 added checkpoint
	// blobs and made edit logs epoch-aware (a base-epoch meta message
	// after the envelope, and an explicit epoch on every record — the
	// replication substrate); version 7 added workload-capture blobs (a
	// sampled request log reusing the edit log's appendable framing) and
	// selectivity-profile blobs (observed per-path candidate/survivor
	// ratios persisted alongside a capture). Readers accept every version
	// back to minVersion: v2/v3 index blobs still decode through the
	// legacy snapshot payload, and gob ignores fields a payload lacks, so
	// older blobs of the other kinds decode with the new fields
	// zero-valued — a v4 manifest loads with Shards 0, meaning a
	// single-document collection, and a v5 edit log loads with base 0 and
	// its record epochs implicitly numbered 1..n.
	version    = 7
	minVersion = 1
)

// FormatError reports a structurally invalid or corrupted store blob: bad
// magic, truncation, unsupported version, wrong kind, or an undecodable or
// inconsistent payload. Callers that load untrusted or possibly-damaged
// files (the xmatchd catalog loader) can distinguish corruption from
// transient I/O errors with errors.As: genuine read failures (a device
// error mid-read, say) are returned unclassified. A FormatError caused by
// an underlying error keeps it on the chain via Unwrap.
type FormatError struct {
	Msg string
	Err error // underlying cause, if any
}

func (e *FormatError) Error() string { return "store: " + e.Msg }

func (e *FormatError) Unwrap() error { return e.Err }

func formatErrorf(format string, args ...any) error {
	return &FormatError{Msg: fmt.Sprintf(format, args...)}
}

type header struct {
	Version int
	Kind    string // "schema", "matching", "mappingset", "catalog", "index", "editlog", "checkpoint", "workload", "profiles"
}

type schemaDTO struct {
	Name string
	// Names and Parents describe the element tree in preorder; the root
	// has Parents[0] == -1.
	Names   []string
	Parents []int32
}

func schemaToDTO(s *schema.Schema) schemaDTO {
	d := schemaDTO{Name: s.Name}
	for _, e := range s.Elements() {
		d.Names = append(d.Names, e.Name)
		if e.Parent == nil {
			d.Parents = append(d.Parents, -1)
		} else {
			d.Parents = append(d.Parents, int32(e.Parent.ID))
		}
	}
	return d
}

func schemaFromDTO(d schemaDTO) (*schema.Schema, error) {
	if len(d.Names) == 0 {
		return nil, fmt.Errorf("store: schema %q has no elements", d.Name)
	}
	if d.Parents[0] != -1 {
		return nil, fmt.Errorf("store: schema %q: first element is not the root", d.Name)
	}
	b := schema.NewBuilder(d.Name, d.Names[0])
	elems := make([]*schema.Element, len(d.Names))
	elems[0] = b.Root
	for i := 1; i < len(d.Names); i++ {
		p := d.Parents[i]
		if p < 0 || int(p) >= i {
			return nil, fmt.Errorf("store: schema %q: element %d has invalid parent %d", d.Name, i, p)
		}
		elems[i] = elems[p].AddChild(d.Names[i])
	}
	return b.Freeze(), nil
}

type matchingDTO struct {
	Source, Target schemaDTO
	S, T           []int32
	Score          []float64
}

type mappingDTO struct {
	S, T  []int32
	Score float64
}

type setDTO struct {
	Source, Target schemaDTO
	Mappings       []mappingDTO
}

func writeHeader(w io.Writer, kind string) error {
	return writeHeaderVersion(w, kind, version)
}

// writeHeaderVersion writes the envelope with an explicit version; tests
// use it to produce blobs of older format versions.
func writeHeaderVersion(w io.Writer, kind string, v int) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(header{Version: v, Kind: kind})
}

// trackingReader remembers the first non-EOF error its underlying reader
// produced, so decode failures can be told apart: a gob error with a clean
// reader is corruption, a gob error after a reader failure is I/O. It
// implements io.ByteReader so gob decoders read exactly the bytes of each
// message instead of wrapping the stream in a buffered reader — which is
// what lets the edit-log loader resume reading length-prefixed records
// right after the envelope. It also counts the bytes consumed: with exact
// reads, that count is the stream position, which is how the edit-log
// loader locates the last complete record when repairing a torn tail.
type trackingReader struct {
	r   io.Reader
	n   int64
	err error
	buf [1]byte
}

func (t *trackingReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	t.n += int64(n)
	if err != nil && err != io.EOF && t.err == nil {
		t.err = err
	}
	return n, err
}

func (t *trackingReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(t, t.buf[:]); err != nil {
		return 0, err
	}
	return t.buf[0], nil
}

// blobReader decodes a store blob's payload after readHeader validated the
// envelope. version is the envelope's format version, for kinds whose
// payload layout changed across versions (index blobs).
type blobReader struct {
	*gob.Decoder
	tr      *trackingReader
	version int
}

// classify wraps a payload decode error: *FormatError (corruption or
// truncation) unless the underlying reader itself failed mid-read, which
// stays an unclassified I/O error.
func (b *blobReader) classify(err error, what string) error {
	if err == nil {
		return nil
	}
	if b.tr.err != nil {
		return fmt.Errorf("store: %s: %w", what, b.tr.err)
	}
	return &FormatError{Msg: what + ": " + err.Error(), Err: err}
}

// readHeader consumes and validates the magic and header, returning the
// remaining gob stream decoder. Validation failures and truncation are
// *FormatError; genuine read failures stay unclassified.
func readHeader(r io.Reader, wantKind string) (*blobReader, error) {
	tr := &trackingReader{r: r}
	buf := make([]byte, len(magic))
	if n, err := io.ReadFull(tr, buf); err != nil {
		if tr.err != nil {
			return nil, fmt.Errorf("store: reading magic: %w", tr.err)
		}
		return nil, &FormatError{Msg: fmt.Sprintf("truncated magic (%d bytes)", n), Err: err}
	}
	if string(buf) != magic {
		return nil, formatErrorf("bad magic %q", buf)
	}
	b := &blobReader{Decoder: gob.NewDecoder(tr), tr: tr}
	var h header
	if err := b.Decode(&h); err != nil {
		return nil, b.classify(err, "reading header")
	}
	if h.Version < minVersion || h.Version > version {
		return nil, formatErrorf("unsupported version %d (want %d..%d)", h.Version, minVersion, version)
	}
	if h.Kind != wantKind {
		return nil, formatErrorf("file contains a %s, want a %s", h.Kind, wantKind)
	}
	b.version = h.Version
	return b, nil
}

// SaveSchema writes a schema.
func SaveSchema(w io.Writer, s *schema.Schema) error {
	if err := writeHeader(w, "schema"); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(schemaToDTO(s))
}

// LoadSchema reads a schema written by SaveSchema.
func LoadSchema(r io.Reader) (*schema.Schema, error) {
	dec, err := readHeader(r, "schema")
	if err != nil {
		return nil, err
	}
	var d schemaDTO
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("store: decoding schema: %w", err)
	}
	return schemaFromDTO(d)
}

// SaveMatching writes a schema matching together with its two schemas.
func SaveMatching(w io.Writer, u *matching.Matching) error {
	if err := writeHeader(w, "matching"); err != nil {
		return err
	}
	d := matchingDTO{Source: schemaToDTO(u.Source), Target: schemaToDTO(u.Target)}
	for _, c := range u.Corrs {
		d.S = append(d.S, int32(c.S))
		d.T = append(d.T, int32(c.T))
		d.Score = append(d.Score, c.Score)
	}
	return gob.NewEncoder(w).Encode(d)
}

// LoadMatching reads a matching written by SaveMatching. The embedded
// schemas are rebuilt and the correspondences re-validated.
func LoadMatching(r io.Reader) (*matching.Matching, error) {
	dec, err := readHeader(r, "matching")
	if err != nil {
		return nil, err
	}
	var d matchingDTO
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("store: decoding matching: %w", err)
	}
	src, err := schemaFromDTO(d.Source)
	if err != nil {
		return nil, err
	}
	tgt, err := schemaFromDTO(d.Target)
	if err != nil {
		return nil, err
	}
	if len(d.S) != len(d.T) || len(d.S) != len(d.Score) {
		return nil, fmt.Errorf("store: matching arrays disagree: %d/%d/%d", len(d.S), len(d.T), len(d.Score))
	}
	corrs := make([]matching.Correspondence, len(d.S))
	for i := range d.S {
		corrs[i] = matching.Correspondence{S: int(d.S[i]), T: int(d.T[i]), Score: d.Score[i]}
	}
	return matching.New(src, tgt, corrs)
}

// SaveSet writes a possible-mapping set together with its schemas.
func SaveSet(w io.Writer, set *mapping.Set) error {
	if err := writeHeader(w, "mappingset"); err != nil {
		return err
	}
	d := setDTO{Source: schemaToDTO(set.Source), Target: schemaToDTO(set.Target)}
	for _, m := range set.Mappings {
		md := mappingDTO{Score: m.Score}
		for _, p := range m.Pairs {
			md.S = append(md.S, int32(p.S))
			md.T = append(md.T, int32(p.T))
		}
		d.Mappings = append(d.Mappings, md)
	}
	return gob.NewEncoder(w).Encode(d)
}

// LoadSet reads a mapping set written by SaveSet, rebuilding probabilities
// via the usual score normalization.
func LoadSet(r io.Reader) (*mapping.Set, error) {
	dec, err := readHeader(r, "mappingset")
	if err != nil {
		return nil, err
	}
	var d setDTO
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("store: decoding mapping set: %w", err)
	}
	src, err := schemaFromDTO(d.Source)
	if err != nil {
		return nil, err
	}
	tgt, err := schemaFromDTO(d.Target)
	if err != nil {
		return nil, err
	}
	mappings := make([]*mapping.Mapping, len(d.Mappings))
	for i, md := range d.Mappings {
		if len(md.S) != len(md.T) {
			return nil, fmt.Errorf("store: mapping %d arrays disagree", i)
		}
		m := &mapping.Mapping{Score: md.Score}
		for j := range md.S {
			m.Pairs = append(m.Pairs, mapping.Pair{S: int(md.S[j]), T: int(md.T[j])})
		}
		mappings[i] = m
	}
	return mapping.NewSet(src, tgt, mappings)
}
