package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"xmatch/internal/delta"
	"xmatch/internal/index"
	"xmatch/internal/xmltree"
)

// editedState builds a document that has lived: parsed, indexed, and
// mutated through the delta layer, so its numbering has holes and its
// numBase sits above the original preorder range — the state a real
// checkpoint captures.
func editedState(t *testing.T) *delta.Snapshot {
	t.Helper()
	doc, err := xmltree.ParseString(`<r><a>1</a><b><c>x</c><c>y</c></b><d>z</d></r>`)
	if err != nil {
		t.Fatal(err)
	}
	h := delta.Open(doc)
	for _, b := range [][]delta.Edit{
		{{Op: delta.OpSetText, Path: "r.a", Text: "2"}},
		{{Op: delta.OpInsert, Path: "r.b", XML: "<c><e>deep</e></c>", Pos: -1}},
		{{Op: delta.OpDelete, Path: "r.d"}},
		{{Op: delta.OpRename, Path: "r.a", Label: "a2"}},
	} {
		if _, err := h.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	return h.Snapshot()
}

func TestCheckpointRoundTrip(t *testing.T) {
	snap := editedState(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, snap.Doc, snap.Index, snap.Epoch); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != snap.Epoch {
		t.Fatalf("epoch %d, want %d", ck.Epoch, snap.Epoch)
	}
	if got, want := ck.Doc.String(), snap.Doc.String(); got != want {
		t.Fatalf("document diverged:\n%s\nvs\n%s", got, want)
	}
	// Numbering must be preserved exactly — Start-addressed edits and
	// byte-identical replication depend on it — not merely structure.
	orig, rest := snap.Doc.Nodes(), ck.Doc.Nodes()
	if len(orig) != len(rest) {
		t.Fatalf("%d nodes restored, want %d", len(rest), len(orig))
	}
	for i := range orig {
		if orig[i].Start != rest[i].Start || orig[i].End != rest[i].End {
			t.Fatalf("node %d renumbered: (%d,%d) -> (%d,%d)",
				i, orig[i].Start, orig[i].End, rest[i].Start, rest[i].End)
		}
	}
	if ck.Doc.NumBase() != snap.Doc.NumBase() {
		t.Fatalf("numBase %d, want %d", ck.Doc.NumBase(), snap.Doc.NumBase())
	}
	// The index comes back installed on the document with the epoch
	// stamped, ready for delta.Open/Adopt.
	if index.For(ck.Doc) != ck.Index {
		t.Fatal("restored index not installed on restored document")
	}
	if ck.Index.Epoch() != snap.Epoch {
		t.Fatalf("restored index epoch %d, want %d", ck.Index.Epoch(), snap.Epoch)
	}
	// A restored shard keeps editing from where it left off: numbering
	// continuity means Start-addressed edits recorded later still resolve.
	h := delta.Open(ck.Doc)
	s2, err := h.Apply([]delta.Edit{{Op: delta.OpSetText, Path: "r.a2", Text: "3"}})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Epoch != snap.Epoch+1 {
		t.Fatalf("post-restore epoch %d, want %d", s2.Epoch, snap.Epoch+1)
	}
}

func TestCheckpointDeterminism(t *testing.T) {
	// Two saves of the same state are byte-identical, and a save of the
	// *restored* state equals a save of the original — the property that
	// lets replication tests compare primary and replica state by
	// comparing checkpoint bytes.
	snap := editedState(t)
	var a, b bytes.Buffer
	if err := SaveCheckpoint(&a, snap.Doc, snap.Index, snap.Epoch); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(&b, snap.Doc, snap.Index, snap.Epoch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same state differ")
	}
	ck, err := LoadCheckpoint(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := SaveCheckpoint(&c, ck.Doc, ck.Index, ck.Epoch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("restored state saves differently than the original")
	}
}

func TestCheckpointCorruption(t *testing.T) {
	snap := editedState(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, snap.Doc, snap.Index, snap.Epoch); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":             {},
		"bad magic":         append([]byte("XMATCH9\n"), good[len(magic):]...),
		"truncated payload": good[: len(good)-7 : len(good)-7],
	}
	// Kind confusion: an edit log is not a checkpoint.
	var lg bytes.Buffer
	if err := CreateEditLog(&lg); err != nil {
		t.Fatal(err)
	}
	cases["wrong kind"] = lg.Bytes()
	// Future version.
	var future bytes.Buffer
	if err := writeHeaderVersion(&future, "checkpoint", version+1); err != nil {
		t.Fatal(err)
	}
	cases["future version"] = future.Bytes()

	for name, data := range cases {
		_, err := LoadCheckpoint(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: load succeeded", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not a *FormatError", name, err, err)
		}
	}
}

func TestCheckpointFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.ckpt")
	// Missing file: no checkpoint, not an error.
	if ck, err := LoadCheckpointFile(path); err != nil || ck != nil {
		t.Fatalf("missing file: %v, %v", err, ck)
	}
	snap := editedState(t)
	if err := SaveCheckpointFile(path, snap.Doc, snap.Index, snap.Epoch); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpointFile(path)
	if err != nil || ck == nil {
		t.Fatalf("load: %v, %v", err, ck)
	}
	if ck.Epoch != snap.Epoch || ck.Doc.String() != snap.Doc.String() {
		t.Fatal("file round trip diverged")
	}
	// Overwrite with a later state; the file must follow.
	h := delta.Open(snap.Doc)
	s2, err := h.Apply([]delta.Edit{{Op: delta.OpSetText, Path: "r.a2", Text: "9"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpointFile(path, s2.Doc, s2.Index, s2.Epoch); err != nil {
		t.Fatal(err)
	}
	if ck, err = LoadCheckpointFile(path); err != nil || ck.Epoch != s2.Epoch {
		t.Fatalf("overwrite: %v, epoch %d want %d", err, ck.Epoch, s2.Epoch)
	}
}
