package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// Workload-capture blobs persist a sampled log of served queries: for
// each captured request, the query's fingerprint, its canonical pattern
// text, evaluation mode, the snapshot epoch it ran against, its latency,
// and a digest of the wire-form result. A capture is a replayable
// record of production traffic — `xmatch workload replay` re-runs each
// record against a live daemon or a locally rebuilt catalog and diffs
// the digests, which turns any capture into a differential oracle for
// refactors — and the raw material for workload analysis (which shapes
// dominate, how their latency moved).
//
// Like the edit log, a capture grows in place, so the payload after the
// envelope is a sequence of uvarint-length-prefixed gob records: a
// crash mid-append tears at most the final record, which the loader
// drops and reports via Torn/ValidSize instead of failing.

// WorkloadRecord is one captured query.
type WorkloadRecord struct {
	Fingerprint uint64 // canonical hash of (dataset, pattern, mode, k)
	Dataset     string
	Pattern     string // canonical (re-parseable) pattern text
	Mode        string // "full", "compact", or "topk"
	K           int    // top-k bound; 0 outside topk mode
	Epoch       uint64 // snapshot epoch the query evaluated against
	LatencyUs   int64  // server-side handling latency, microseconds
	Digest      uint64 // FNV-64a over the wire-form results
}

// workloadMeta is the gob message between the envelope and the record
// stream. SampleN records the capture's sampling stride (1 = every
// request) so replay reports can state what fraction of traffic the
// capture represents.
type workloadMeta struct {
	SampleN int
}

// Workload is a loaded capture.
type Workload struct {
	SampleN int
	Records []WorkloadRecord

	// Torn and ValidSize mirror EditLog: a final record truncated by a
	// crash is dropped, and truncating the file to ValidSize repairs it.
	Torn      bool
	ValidSize int64
}

// CreateWorkload writes an empty workload-capture blob with the given
// sampling stride (clamped to >= 1).
func CreateWorkload(w io.Writer, sampleN int) error {
	if sampleN < 1 {
		sampleN = 1
	}
	if err := writeHeader(w, "workload"); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(workloadMeta{SampleN: sampleN})
}

// EncodeWorkloadRecord renders one record in its framed on-disk form:
// uvarint length prefix followed by the gob-encoded record.
func EncodeWorkloadRecord(rec WorkloadRecord) ([]byte, error) {
	if rec.Pattern == "" {
		return nil, fmt.Errorf("store: workload record: empty pattern")
	}
	var record bytes.Buffer
	record.Write(make([]byte, binary.MaxVarintLen64)) // frame placeholder
	if err := gob.NewEncoder(&record).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encoding workload record: %w", err)
	}
	payloadLen := record.Len() - binary.MaxVarintLen64
	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(payloadLen))
	buf := record.Bytes()
	copy(buf[binary.MaxVarintLen64-n:], frame[:n])
	return buf[binary.MaxVarintLen64-n:], nil
}

// AppendWorkloadRecord appends one record to a capture previously
// started with CreateWorkload. The writer must be positioned at the end
// of the blob (an *os.File opened with O_APPEND, typically). Frame and
// payload go down in a single Write, so a crash leaves at worst one
// torn record at the tail.
func AppendWorkloadRecord(w io.Writer, rec WorkloadRecord) (int, error) {
	frame, err := EncodeWorkloadRecord(rec)
	if err != nil {
		return 0, err
	}
	return w.Write(frame)
}

// LoadWorkload reads a capture, dropping (and reporting) a torn tail
// like LoadEditLog does. Mid-stream damage is a *FormatError; genuine
// read failures stay unclassified.
func LoadWorkload(r io.Reader) (*Workload, error) {
	dec, err := readHeader(r, "workload")
	if err != nil {
		return nil, err
	}
	wl := &Workload{}
	var meta workloadMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, dec.classify(err, "workload meta")
	}
	wl.SampleN = meta.SampleN
	if wl.SampleN < 1 {
		wl.SampleN = 1
	}
	br := dec.tr
	wl.ValidSize = br.n
	for {
		size, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return wl, nil
		}
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) && br.err == nil {
				wl.Torn = true
				return wl, nil
			}
			return nil, dec.classify(err, fmt.Sprintf("workload record %d: length prefix", len(wl.Records)))
		}
		if size == 0 || size > 1<<20 {
			return nil, formatErrorf("workload record %d: implausible size %d", len(wl.Records), size)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			if (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)) && br.err == nil {
				wl.Torn = true
				return wl, nil
			}
			return nil, dec.classify(err, fmt.Sprintf("workload record %d: torn record", len(wl.Records)))
		}
		var rec WorkloadRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return nil, dec.classify(err, fmt.Sprintf("workload record %d: decoding", len(wl.Records)))
		}
		if rec.Pattern == "" {
			return nil, formatErrorf("workload record %d: empty pattern", len(wl.Records))
		}
		wl.Records = append(wl.Records, rec)
		wl.ValidSize = br.n
	}
}

// LoadWorkloadFile reads the capture file at path.
func LoadWorkloadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWorkload(f)
}

// ProfileEntry is one path's observed selectivity on one shard: how many
// postings each pruning pass of the matcher admitted, accumulated since
// the shard's index was built. Candidates -> UsefulSurvivors is the
// probe-table (usefulness) pass; UsefulSurvivors -> ReachSurvivors is the
// structural reachability pass. The ratios are exactly what a cost-based
// planner needs to compare its estimates against production reality.
type ProfileEntry struct {
	Dataset         string
	Shard           int
	Path            string
	Evals           uint64 // evaluations that touched this path
	Candidates      uint64
	UsefulSurvivors uint64
	ReachSurvivors  uint64
}

// profilesDTO is the single gob payload of a profiles blob.
type profilesDTO struct {
	Entries []ProfileEntry
}

// SaveProfiles writes a selectivity-profile blob.
func SaveProfiles(w io.Writer, entries []ProfileEntry) error {
	if err := writeHeader(w, "profiles"); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(profilesDTO{Entries: entries})
}

// LoadProfiles reads a profiles blob written by SaveProfiles.
func LoadProfiles(r io.Reader) ([]ProfileEntry, error) {
	dec, err := readHeader(r, "profiles")
	if err != nil {
		return nil, err
	}
	var d profilesDTO
	if err := dec.Decode(&d); err != nil {
		return nil, dec.classify(err, "decoding profiles")
	}
	return d.Entries, nil
}

// WriteProfilesFile atomically replaces the profiles blob at path: write
// to a temporary sibling, sync, rename. A crash leaves the old blob or
// the new one, never a hybrid.
func WriteProfilesFile(path string, entries []ProfileEntry) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	err = SaveProfiles(f, entries)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadProfilesFile reads the profiles blob at path.
func LoadProfilesFile(path string) ([]ProfileEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadProfiles(f)
}
