package store

// Cross-version blob migration coverage: every blob kind written under an
// older format envelope must still load under the current reader
// (minVersion = 1), with fields that post-date the envelope decoding as
// zero values — and every corruption branch of LoadIndex must surface as
// a *FormatError, never as a silent misload.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/index"
	"xmatch/internal/mapgen"
	"xmatch/internal/xmltree"
)

// saveEditLogLegacy writes an edit-log blob in the pre-v6 payload layout:
// no meta message after the envelope, and records that carry only their
// edits (gob matches by field name, so a legacy record decodes into
// EditRecord with Epoch 0).
func saveEditLogLegacy(w io.Writer, batches [][]delta.Edit, v int) error {
	if err := writeHeaderVersion(w, "editlog", v); err != nil {
		return err
	}
	for _, b := range batches {
		var record bytes.Buffer
		if err := gob.NewEncoder(&record).Encode(struct{ Edits []delta.Edit }{b}); err != nil {
			return err
		}
		var frame [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(frame[:], uint64(record.Len()))
		if _, err := w.Write(frame[:n]); err != nil {
			return err
		}
		if _, err := w.Write(record.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// reversion rewrites a current-format blob's envelope to an older version,
// leaving the payload bytes untouched — exactly what a blob written by an
// older build looks like, since the payload encodings never changed.
func reversion(t *testing.T, blob []byte, kind string, v int) []byte {
	t.Helper()
	tr := &trackingReader{r: bytes.NewReader(blob)}
	buf := make([]byte, len(magic))
	if _, err := tr.Read(buf); err != nil || string(buf) != magic {
		t.Fatalf("blob has no magic: %v", err)
	}
	dec := gob.NewDecoder(tr)
	var h header
	if err := dec.Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Kind != kind {
		t.Fatalf("blob is a %s, want %s", h.Kind, kind)
	}
	rest := new(bytes.Buffer)
	if _, err := rest.ReadFrom(tr); err != nil {
		t.Fatal(err)
	}
	out := new(bytes.Buffer)
	if err := writeHeaderVersion(out, kind, v); err != nil {
		t.Fatal(err)
	}
	out.Write(rest.Bytes())
	return out.Bytes()
}

func TestStoreMigrateAcrossVersions(t *testing.T) {
	d := dataset.MustLoad("D5")
	set, err := mapgen.TopH(d.Matching, 10, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.New(xmltree.NewRoot("r"))
	doc.Root.AddChild("a").AddText("1")
	doc = xmltree.New(doc.Root)
	ix := index.Build(doc)

	kinds := map[string]struct {
		save func(*bytes.Buffer) error
		load func([]byte) error
	}{
		"schema": {
			func(b *bytes.Buffer) error { return SaveSchema(b, d.Target) },
			func(p []byte) error { _, err := LoadSchema(bytes.NewReader(p)); return err },
		},
		"matching": {
			func(b *bytes.Buffer) error { return SaveMatching(b, d.Matching) },
			func(p []byte) error { _, err := LoadMatching(bytes.NewReader(p)); return err },
		},
		"mappingset": {
			func(b *bytes.Buffer) error { return SaveSet(b, set) },
			func(p []byte) error { _, err := LoadSet(bytes.NewReader(p)); return err },
		},
		"catalog": {
			func(b *bytes.Buffer) error {
				return SaveCatalog(b, &Catalog{Entries: []CatalogEntry{{Name: "x", Dataset: "D1"}}})
			},
			func(p []byte) error { _, err := LoadCatalog(bytes.NewReader(p)); return err },
		},
		"index": {
			func(b *bytes.Buffer) error { return SaveIndex(b, ix) },
			func(p []byte) error { _, err := LoadIndex(bytes.NewReader(p), doc); return err },
		},
		"editlog": {
			func(b *bytes.Buffer) error { return CreateEditLog(b) },
			func(p []byte) error { _, err := LoadEditLog(bytes.NewReader(p)); return err },
		},
	}
	for kind, k := range kinds {
		var buf bytes.Buffer
		if err := k.save(&buf); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		for v := minVersion; v <= version; v++ {
			blob := reversion(t, buf.Bytes(), kind, v)
			if kind == "index" && v < 4 {
				// Index payloads changed layout in v4; an old-version
				// index blob carries the legacy flat payload, written by
				// the legacy writer rather than by envelope rewriting.
				var legacy bytes.Buffer
				if err := saveIndexLegacy(&legacy, ix, v); err != nil {
					t.Fatalf("index: legacy v%d save: %v", v, err)
				}
				blob = legacy.Bytes()
			}
			if kind == "editlog" && v < 6 {
				// Edit-log payloads gained the base-epoch meta message in
				// v6; an old-version log has no meta, so it too needs the
				// legacy writer.
				var legacy bytes.Buffer
				if err := saveEditLogLegacy(&legacy, nil, v); err != nil {
					t.Fatalf("editlog: legacy v%d save: %v", v, err)
				}
				blob = legacy.Bytes()
			}
			if err := k.load(blob); err != nil {
				t.Errorf("%s: v%d envelope rejected: %v", kind, v, err)
			}
		}
		// One past the current version must be rejected as *FormatError.
		err := k.load(reversion(t, buf.Bytes(), kind, version+1))
		var fe *FormatError
		if err == nil || !errors.As(err, &fe) {
			t.Errorf("%s: future envelope accepted or misclassified: %v", kind, err)
		}
	}
}

// TestStoreMigrateEditLogV5 proves a populated pre-v6 edit log — no base
// meta, records without epochs — loads under the v6 reader with base 0
// and implicit epochs 1..n, preserving every batch.
func TestStoreMigrateEditLogV5(t *testing.T) {
	batches := [][]delta.Edit{
		{{Op: delta.OpSetText, Path: "r.a", Text: "2"}},
		{{Op: delta.OpInsert, Path: "r", XML: "<c>x</c>", Pos: -1}},
		{{Op: delta.OpDelete, Path: "r.c"}},
	}
	for v := minVersion; v < 6; v++ {
		var legacy bytes.Buffer
		if err := saveEditLogLegacy(&legacy, batches, v); err != nil {
			t.Fatalf("v%d: save: %v", v, err)
		}
		lg, err := LoadEditLog(bytes.NewReader(legacy.Bytes()))
		if err != nil {
			t.Fatalf("v%d: load: %v", v, err)
		}
		if lg.Base != 0 || lg.Torn {
			t.Fatalf("v%d: base %d, torn %v", v, lg.Base, lg.Torn)
		}
		if len(lg.Records) != len(batches) {
			t.Fatalf("v%d: %d records, want %d", v, len(lg.Records), len(batches))
		}
		for i, rec := range lg.Records {
			if rec.Epoch != uint64(i)+1 {
				t.Errorf("v%d: record %d assigned epoch %d, want %d", v, i, rec.Epoch, i+1)
			}
			if !reflect.DeepEqual(rec.Edits, batches[i]) {
				t.Errorf("v%d: record %d edits diverged", v, i)
			}
		}
	}
}

// TestStoreMigrateIndexV2V3 proves old flat-payload index blobs (the
// v2/v3 on-disk format) load under the v4 reader and reconstruct exactly
// the index a current save/load round trip produces.
func TestStoreMigrateIndexV2V3(t *testing.T) {
	d := dataset.MustLoad("D7")
	doc := d.OrderDocument(600, 42)
	ix := index.Build(doc)

	var current bytes.Buffer
	if err := SaveIndex(&current, ix); err != nil {
		t.Fatal(err)
	}
	want, err := LoadIndex(bytes.NewReader(current.Bytes()), doc)
	if err != nil {
		t.Fatalf("current blob: %v", err)
	}
	for _, v := range []int{2, 3} {
		var legacy bytes.Buffer
		if err := saveIndexLegacy(&legacy, ix, v); err != nil {
			t.Fatalf("v%d: save: %v", v, err)
		}
		if legacy.Len() <= current.Len() {
			t.Errorf("v%d legacy blob (%dB) not larger than compressed v4 blob (%dB)", v, legacy.Len(), current.Len())
		}
		got, err := LoadIndex(bytes.NewReader(legacy.Bytes()), doc)
		if err != nil {
			t.Fatalf("v%d: load: %v", v, err)
		}
		if !reflect.DeepEqual(got.Snapshot(), want.Snapshot()) {
			t.Errorf("v%d: migrated index disagrees with v4 round trip", v)
		}
		for _, p := range got.Paths() {
			if !reflect.DeepEqual(got.Postings(p), want.Postings(p)) {
				t.Errorf("v%d: postings of %q diverged after migration", v, p)
			}
		}
	}
}

// TestStoreMigrateCatalogFields: the fields that arrived after v1 decode
// as empty from a v1 manifest and round-trip under the current version.
func TestStoreMigrateCatalogFields(t *testing.T) {
	man := &Catalog{Entries: []CatalogEntry{
		{Name: "frozen", SetPath: "blobs/frozen.set", IndexPath: "blobs/frozen.idx", EditLogPath: "blobs/frozen.editlog"},
	}}
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, man); err != nil {
		t.Fatal(err)
	}
	for v := minVersion; v <= version; v++ {
		got, err := LoadCatalog(bytes.NewReader(reversion(t, buf.Bytes(), "catalog", v)))
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		e := got.Entries[0]
		if e.IndexPath != "blobs/frozen.idx" || e.EditLogPath != "blobs/frozen.editlog" {
			t.Errorf("v%d: path fields lost: %+v", v, e)
		}
	}
}

// TestStoreMigrateCatalogV4Shards: the shard count arrived with manifest
// v5. A sharded entry round-trips under the current version; a v4 manifest
// — written before the field existed — decodes with Shards 0 (a
// single-document collection); and the new validation rules reject
// malformed shard counts as *FormatError.
func TestStoreMigrateCatalogV4Shards(t *testing.T) {
	man := &Catalog{Entries: []CatalogEntry{
		{Name: "corpus", Dataset: "D7", Shards: 4, DocNodes: 20000},
		{Name: "single", Dataset: "D1"},
	}}
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, man); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v%d round trip: %v", version, err)
	}
	if got.Entries[0].Shards != 4 || got.Entries[1].Shards != 0 {
		t.Fatalf("shard counts lost in round trip: %+v", got.Entries)
	}

	// A genuine v4 manifest carries no Shards field in its payload (gob
	// omits zero fields, and old writers had no field at all), so the
	// pre-shards manifest re-enveloped at v4 is byte-equivalent to one an
	// old build wrote. It must load with Shards 0 on every entry.
	old := &Catalog{Entries: []CatalogEntry{{Name: "corpus", Dataset: "D7", DocNodes: 20000}}}
	var obuf bytes.Buffer
	if err := SaveCatalog(&obuf, old); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCatalog(bytes.NewReader(reversion(t, obuf.Bytes(), "catalog", 4)))
	if err != nil {
		t.Fatalf("v4 manifest under v5 reader: %v", err)
	}
	if got.Entries[0].Shards != 0 {
		t.Fatalf("v4 manifest decoded with Shards %d, want 0", got.Entries[0].Shards)
	}

	for name, bad := range map[string]*Catalog{
		"negative shards":    {Entries: []CatalogEntry{{Name: "x", Dataset: "D1", Shards: -1}}},
		"blob-backed shards": {Entries: []CatalogEntry{{Name: "x", SetPath: "b.set", Shards: 2}}},
	} {
		err := bad.Validate()
		var fe *FormatError
		if err == nil || !errors.As(err, &fe) {
			t.Errorf("%s: accepted or misclassified: %v", name, err)
		}
	}
}

// indexBlobWithSnapshot encodes an arbitrary flat snapshot payload under
// a v3 envelope (the last flat-payload version), so each document
// verification branch of LoadIndex can be driven directly.
func indexBlobWithSnapshot(t *testing.T, snap *index.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHeaderVersion(&buf, "index", 3); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// indexBlobWithCompact encodes an arbitrary compact payload under the
// current (v4) envelope, for driving the compressed-structure validation
// branches.
func indexBlobWithCompact(t *testing.T, cs *index.CompactSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHeader(&buf, "index"); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&buf).Encode(cs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadIndexV4CorruptionBranches drives the v4 payload validation: a
// truncated delta block, a malformed varint, and a skip pointer outside
// the data must each surface as *FormatError — never a panic, never a
// silent misload.
func TestLoadIndexV4CorruptionBranches(t *testing.T) {
	// A document with one long same-path list, so the compact payload has
	// real multi-block structure (skip pointers) to corrupt.
	root := xmltree.NewRoot("PO")
	for i := 0; i < 200; i++ {
		root.AddChild("Line").AddText(fmt.Sprintf("v%d", i%9))
	}
	doc := xmltree.New(root)
	good := index.Build(doc).Snapshot().Compact()

	perturb := func(f func(*index.CompactSnapshot)) []byte {
		c := *good
		c.Paths = append([]index.CompactPath(nil), good.Paths...)
		for i := range c.Paths {
			c.Paths[i].BlockOffs = append([]uint32(nil), good.Paths[i].BlockOffs...)
			c.Paths[i].Data = append([]byte(nil), good.Paths[i].Data...)
		}
		c.Values = append([]index.CompactValue(nil), good.Values...)
		for i := range c.Values {
			c.Values[i].Deltas = append([]byte(nil), good.Values[i].Deltas...)
		}
		f(&c)
		return indexBlobWithCompact(t, &c)
	}
	// The multi-block path (the 200 Line postings).
	pi := -1
	for i, p := range good.Paths {
		if len(p.BlockOffs) > 0 {
			pi = i
			break
		}
	}
	if pi < 0 {
		t.Fatal("fixture has no multi-block path")
	}

	cases := map[string][]byte{
		"truncated block": perturb(func(c *index.CompactSnapshot) {
			c.Paths[pi].Data = c.Paths[pi].Data[:len(c.Paths[pi].Data)-1]
		}),
		"bad varint": perturb(func(c *index.CompactSnapshot) {
			// An unterminated continuation run overflows int32 range.
			d := c.Paths[pi].Data
			for i := range d {
				d[i] = 0xff
			}
		}),
		"skip pointer out of range": perturb(func(c *index.CompactSnapshot) {
			c.Paths[pi].BlockOffs[0] = uint32(len(c.Paths[pi].Data)) + 17
		}),
		"skip pointer misaligned": perturb(func(c *index.CompactSnapshot) {
			c.Paths[pi].BlockOffs[0]++
		}),
		"skip pointer count mismatch": perturb(func(c *index.CompactSnapshot) {
			c.Paths[pi].BlockOffs = c.Paths[pi].BlockOffs[:0]
		}),
		"trailing bytes": perturb(func(c *index.CompactSnapshot) {
			c.Paths[pi].Data = append(c.Paths[pi].Data, 0x01, 0x01)
		}),
		"negative count": perturb(func(c *index.CompactSnapshot) {
			c.Paths[pi].Count = -4
		}),
		"value bad varint": perturb(func(c *index.CompactSnapshot) {
			c.Values[0].Deltas = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
		}),
		"value truncated": perturb(func(c *index.CompactSnapshot) {
			c.Values[0].Deltas = c.Values[0].Deltas[:0]
		}),
	}
	for name, blob := range cases {
		_, err := LoadIndex(bytes.NewReader(blob), doc)
		if err == nil {
			t.Errorf("%s: load succeeded", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not *FormatError", name, err, err)
		}
	}

	// Sanity: the unperturbed compact payload still loads and answers.
	if _, err := LoadIndex(bytes.NewReader(indexBlobWithCompact(t, good)), doc); err != nil {
		t.Fatalf("good v4 blob rejected: %v", err)
	}
}

func TestLoadIndexFormatErrorBranches(t *testing.T) {
	doc, err := xmltree.ParseString(`<PO><Line><Num>1</Num></Line><Line><Num>2</Num></Line></PO>`)
	if err != nil {
		t.Fatal(err)
	}
	good := index.Build(doc).Snapshot()

	var goodBlob bytes.Buffer
	if err := SaveIndex(&goodBlob, index.Build(doc)); err != nil {
		t.Fatal(err)
	}

	perturb := func(f func(*index.Snapshot)) []byte {
		s := *good
		s.Paths = append([]index.SnapshotPath(nil), good.Paths...)
		for i := range s.Paths {
			s.Paths[i].Starts = append([]int32(nil), good.Paths[i].Starts...)
			s.Paths[i].Ends = append([]int32(nil), good.Paths[i].Ends...)
			s.Paths[i].Levels = append([]int32(nil), good.Paths[i].Levels...)
		}
		s.Values = append([]index.SnapshotValue(nil), good.Values...)
		f(&s)
		return indexBlobWithSnapshot(t, &s)
	}

	cases := map[string][]byte{
		"bad magic":        append([]byte("YMATCH1\n"), goodBlob.Bytes()[len(magic):]...),
		"truncated magic":  goodBlob.Bytes()[:5],
		"truncated header": goodBlob.Bytes()[:len(magic)+2],
		"truncated payload": func() []byte {
			b := goodBlob.Bytes()
			return b[:len(b)-9]
		}(),
		"document size mismatch": perturb(func(s *index.Snapshot) { s.DocNodes++ }),
		"region arrays disagree": perturb(func(s *index.Snapshot) { s.Paths[0].Ends = s.Paths[0].Ends[:0] }),
		"posting disagrees": perturb(func(s *index.Snapshot) {
			s.Paths[0].Levels[0]++
		}),
		"unresolvable start": perturb(func(s *index.Snapshot) {
			s.Paths[0].Starts[0] += 3 // between boundaries: no such node
		}),
		"postings out of order": perturb(func(s *index.Snapshot) {
			p := &s.Paths[1]
			if len(p.Starts) < 2 {
				for i := range s.Paths {
					if len(s.Paths[i].Starts) >= 2 {
						p = &s.Paths[i]
						break
					}
				}
			}
			p.Starts[0], p.Starts[1] = p.Starts[1], p.Starts[0]
			p.Ends[0], p.Ends[1] = p.Ends[1], p.Ends[0]
			p.Levels[0], p.Levels[1] = p.Levels[1], p.Levels[0]
		}),
		"posting/document count mismatch": perturb(func(s *index.Snapshot) {
			// Drop one whole path entry: fewer postings than nodes.
			s.Paths = s.Paths[1:]
		}),
		"value disagrees": perturb(func(s *index.Snapshot) { s.Values[0].Text += "!" }),
		"missing value entry": perturb(func(s *index.Snapshot) {
			s.Values = s.Values[:len(s.Values)-1]
		}),
	}
	for name, blob := range cases {
		_, err := LoadIndex(bytes.NewReader(blob), doc)
		if err == nil {
			t.Errorf("%s: load succeeded", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not *FormatError", name, err, err)
		}
	}

	// Sanity: the unperturbed snapshot still loads.
	if _, err := LoadIndex(bytes.NewReader(goodBlob.Bytes()), doc); err != nil {
		t.Fatalf("good blob rejected: %v", err)
	}
	// And the branch messages stay distinguishable for operators.
	_, err = LoadIndex(bytes.NewReader(perturb(func(s *index.Snapshot) { s.DocNodes++ })), doc)
	if err == nil || !strings.Contains(err.Error(), "nodes") {
		t.Errorf("mismatch error lost its detail: %v", err)
	}
}
