package store

// Cross-version blob migration coverage: every blob kind written under an
// older format envelope must still load under the current reader
// (minVersion = 1), with fields that post-date the envelope decoding as
// zero values — and every corruption branch of LoadIndex must surface as
// a *FormatError, never as a silent misload.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"testing"

	"xmatch/internal/dataset"
	"xmatch/internal/index"
	"xmatch/internal/mapgen"
	"xmatch/internal/xmltree"
)

// reversion rewrites a current-format blob's envelope to an older version,
// leaving the payload bytes untouched — exactly what a blob written by an
// older build looks like, since the payload encodings never changed.
func reversion(t *testing.T, blob []byte, kind string, v int) []byte {
	t.Helper()
	tr := &trackingReader{r: bytes.NewReader(blob)}
	buf := make([]byte, len(magic))
	if _, err := tr.Read(buf); err != nil || string(buf) != magic {
		t.Fatalf("blob has no magic: %v", err)
	}
	dec := gob.NewDecoder(tr)
	var h header
	if err := dec.Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Kind != kind {
		t.Fatalf("blob is a %s, want %s", h.Kind, kind)
	}
	rest := new(bytes.Buffer)
	if _, err := rest.ReadFrom(tr); err != nil {
		t.Fatal(err)
	}
	out := new(bytes.Buffer)
	if err := writeHeaderVersion(out, kind, v); err != nil {
		t.Fatal(err)
	}
	out.Write(rest.Bytes())
	return out.Bytes()
}

func TestBlobMigrationAcrossVersions(t *testing.T) {
	d := dataset.MustLoad("D5")
	set, err := mapgen.TopH(d.Matching, 10, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.New(xmltree.NewRoot("r"))
	doc.Root.AddChild("a").AddText("1")
	doc = xmltree.New(doc.Root)
	ix := index.Build(doc)

	kinds := map[string]struct {
		save func(*bytes.Buffer) error
		load func([]byte) error
	}{
		"schema": {
			func(b *bytes.Buffer) error { return SaveSchema(b, d.Target) },
			func(p []byte) error { _, err := LoadSchema(bytes.NewReader(p)); return err },
		},
		"matching": {
			func(b *bytes.Buffer) error { return SaveMatching(b, d.Matching) },
			func(p []byte) error { _, err := LoadMatching(bytes.NewReader(p)); return err },
		},
		"mappingset": {
			func(b *bytes.Buffer) error { return SaveSet(b, set) },
			func(p []byte) error { _, err := LoadSet(bytes.NewReader(p)); return err },
		},
		"catalog": {
			func(b *bytes.Buffer) error {
				return SaveCatalog(b, &Catalog{Entries: []CatalogEntry{{Name: "x", Dataset: "D1"}}})
			},
			func(p []byte) error { _, err := LoadCatalog(bytes.NewReader(p)); return err },
		},
		"index": {
			func(b *bytes.Buffer) error { return SaveIndex(b, ix) },
			func(p []byte) error { _, err := LoadIndex(bytes.NewReader(p), doc); return err },
		},
		"editlog": {
			func(b *bytes.Buffer) error { return CreateEditLog(b) },
			func(p []byte) error { _, err := LoadEditLog(bytes.NewReader(p)); return err },
		},
	}
	for kind, k := range kinds {
		var buf bytes.Buffer
		if err := k.save(&buf); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		for v := minVersion; v <= version; v++ {
			if err := k.load(reversion(t, buf.Bytes(), kind, v)); err != nil {
				t.Errorf("%s: v%d envelope rejected: %v", kind, v, err)
			}
		}
		// One past the current version must be rejected as *FormatError.
		err := k.load(reversion(t, buf.Bytes(), kind, version+1))
		var fe *FormatError
		if err == nil || !errors.As(err, &fe) {
			t.Errorf("%s: future envelope accepted or misclassified: %v", kind, err)
		}
	}
}

// TestCatalogV1ToV2Fields: the two fields that arrived after v1 decode as
// empty from a v1 manifest and round-trip under v3.
func TestCatalogV1ToV2Fields(t *testing.T) {
	man := &Catalog{Entries: []CatalogEntry{
		{Name: "frozen", SetPath: "blobs/frozen.set", IndexPath: "blobs/frozen.idx", EditLogPath: "blobs/frozen.editlog"},
	}}
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, man); err != nil {
		t.Fatal(err)
	}
	for v := minVersion; v <= version; v++ {
		got, err := LoadCatalog(bytes.NewReader(reversion(t, buf.Bytes(), "catalog", v)))
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		e := got.Entries[0]
		if e.IndexPath != "blobs/frozen.idx" || e.EditLogPath != "blobs/frozen.editlog" {
			t.Errorf("v%d: path fields lost: %+v", v, e)
		}
	}
}

// indexBlobWithSnapshot encodes an arbitrary snapshot payload under a
// valid current envelope, so each verification branch of LoadIndex can be
// driven directly.
func indexBlobWithSnapshot(t *testing.T, snap *index.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHeader(&buf, "index"); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadIndexFormatErrorBranches(t *testing.T) {
	doc, err := xmltree.ParseString(`<PO><Line><Num>1</Num></Line><Line><Num>2</Num></Line></PO>`)
	if err != nil {
		t.Fatal(err)
	}
	good := index.Build(doc).Snapshot()

	var goodBlob bytes.Buffer
	if err := SaveIndex(&goodBlob, index.Build(doc)); err != nil {
		t.Fatal(err)
	}

	perturb := func(f func(*index.Snapshot)) []byte {
		s := *good
		s.Paths = append([]index.SnapshotPath(nil), good.Paths...)
		for i := range s.Paths {
			s.Paths[i].Starts = append([]int32(nil), good.Paths[i].Starts...)
			s.Paths[i].Ends = append([]int32(nil), good.Paths[i].Ends...)
			s.Paths[i].Levels = append([]int32(nil), good.Paths[i].Levels...)
		}
		s.Values = append([]index.SnapshotValue(nil), good.Values...)
		f(&s)
		return indexBlobWithSnapshot(t, &s)
	}

	cases := map[string][]byte{
		"bad magic":        append([]byte("YMATCH1\n"), goodBlob.Bytes()[len(magic):]...),
		"truncated magic":  goodBlob.Bytes()[:5],
		"truncated header": goodBlob.Bytes()[:len(magic)+2],
		"truncated payload": func() []byte {
			b := goodBlob.Bytes()
			return b[:len(b)-9]
		}(),
		"document size mismatch": perturb(func(s *index.Snapshot) { s.DocNodes++ }),
		"region arrays disagree": perturb(func(s *index.Snapshot) { s.Paths[0].Ends = s.Paths[0].Ends[:0] }),
		"posting disagrees": perturb(func(s *index.Snapshot) {
			s.Paths[0].Levels[0]++
		}),
		"unresolvable start": perturb(func(s *index.Snapshot) {
			s.Paths[0].Starts[0] += 3 // between boundaries: no such node
		}),
		"postings out of order": perturb(func(s *index.Snapshot) {
			p := &s.Paths[1]
			if len(p.Starts) < 2 {
				for i := range s.Paths {
					if len(s.Paths[i].Starts) >= 2 {
						p = &s.Paths[i]
						break
					}
				}
			}
			p.Starts[0], p.Starts[1] = p.Starts[1], p.Starts[0]
			p.Ends[0], p.Ends[1] = p.Ends[1], p.Ends[0]
			p.Levels[0], p.Levels[1] = p.Levels[1], p.Levels[0]
		}),
		"posting/document count mismatch": perturb(func(s *index.Snapshot) {
			// Drop one whole path entry: fewer postings than nodes.
			s.Paths = s.Paths[1:]
		}),
		"value disagrees": perturb(func(s *index.Snapshot) { s.Values[0].Text += "!" }),
		"missing value entry": perturb(func(s *index.Snapshot) {
			s.Values = s.Values[:len(s.Values)-1]
		}),
	}
	for name, blob := range cases {
		_, err := LoadIndex(bytes.NewReader(blob), doc)
		if err == nil {
			t.Errorf("%s: load succeeded", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not *FormatError", name, err, err)
		}
	}

	// Sanity: the unperturbed snapshot still loads.
	if _, err := LoadIndex(bytes.NewReader(goodBlob.Bytes()), doc); err != nil {
		t.Fatalf("good blob rejected: %v", err)
	}
	// And the branch messages stay distinguishable for operators.
	_, err = LoadIndex(bytes.NewReader(perturb(func(s *index.Snapshot) { s.DocNodes++ })), doc)
	if err == nil || !strings.Contains(err.Error(), "nodes") {
		t.Errorf("mismatch error lost its detail: %v", err)
	}
}
