package store

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"xmatch/internal/index"
	"xmatch/internal/xmltree"
)

// Checkpoint blobs (format version 6) persist one shard's mutated state
// as a single self-verifying file: the document in its persisted preorder
// form — labels, texts, parents, and crucially the exact interval numbers
// plus the numbering base — together with the compact index payload and
// the epoch the state sits at. Reloading re-parses nothing: the document
// is reassembled with its recorded numbering (xmltree.Assemble; a fresh
// parse would renumber, breaking Start-addressed edits, collection
// ordering, and byte-identical replication), the index is rebuilt through
// the same verified FromSnapshot path index blobs use, and the epoch is
// stamped back so consistency tokens stay monotonic.
//
// Checkpoints are what lets an edit log be truncated: a log reset to base
// epoch E plus a checkpoint at E reproduce the same state as the full
// log from genesis, and a follower that fell behind the retained log
// bootstraps from the checkpoint instead of replaying history that no
// longer exists. Two saves of the same state produce identical bytes, so
// primary and replica state can be compared by comparing checkpoints.

// checkpointDTO is the persisted payload. Node arrays are parallel,
// indexed by preorder position; Parents[0] == -1.
type checkpointDTO struct {
	Epoch   uint64
	NumBase int
	Labels  []string
	Texts   []string
	Parents []int32
	Starts  []int32
	Ends    []int32
	Index   index.CompactSnapshot
}

// Checkpoint is a restored checkpoint: the reassembled document with its
// verified index installed (epoch already stamped), ready for delta.Open
// or Handle.Adopt.
type Checkpoint struct {
	Epoch uint64
	Doc   *xmltree.Document
	Index *index.Index
}

// SaveCheckpoint writes a checkpoint blob for one shard's state: the
// document, its index, and the epoch the pair sits at. The caller must
// hold the state still for the duration (delta.Handle.Freeze).
func SaveCheckpoint(w io.Writer, doc *xmltree.Document, ix *index.Index, epoch uint64) error {
	if err := writeHeader(w, "checkpoint"); err != nil {
		return err
	}
	nodes := doc.Nodes()
	d := checkpointDTO{
		Epoch:   epoch,
		NumBase: doc.NumBase(),
		Labels:  make([]string, len(nodes)),
		Texts:   make([]string, len(nodes)),
		Parents: make([]int32, len(nodes)),
		Starts:  make([]int32, len(nodes)),
		Ends:    make([]int32, len(nodes)),
		Index:   *ix.Snapshot().Compact(),
	}
	// Parents are resolved by Start, not pointer: a copy-on-write snapshot
	// shares nodes whose Parent pointers refer to superseded clones, and
	// only positional identity is stable across revisions (see
	// xmltree.Revision).
	pos := make(map[int]int32, len(nodes))
	for i, n := range nodes {
		pos[n.Start] = int32(i)
	}
	for i, n := range nodes {
		d.Labels[i] = n.Label
		d.Texts[i] = n.Text
		if n.Parent == nil {
			d.Parents[i] = -1
		} else {
			p, ok := pos[n.Parent.Start]
			if !ok {
				return fmt.Errorf("store: checkpoint: node %d has a parent outside the document", i)
			}
			d.Parents[i] = p
		}
		d.Starts[i] = int32(n.Start)
		d.Ends[i] = int32(n.End)
	}
	return gob.NewEncoder(w).Encode(d)
}

// LoadCheckpoint reads a checkpoint blob, reassembles the document with
// its persisted numbering, rebuilds and verifies the index against it,
// stamps the epoch, and installs the index on the document. Structural
// damage anywhere — envelope, node arrays, interval invariants, index
// payload, index/document disagreement — is a *FormatError.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	dec, err := readHeader(r, "checkpoint")
	if err != nil {
		return nil, err
	}
	var d checkpointDTO
	if err := dec.Decode(&d); err != nil {
		return nil, dec.classify(err, "decoding checkpoint")
	}
	n := len(d.Labels)
	if len(d.Texts) != n || len(d.Parents) != n || len(d.Starts) != n || len(d.Ends) != n {
		return nil, formatErrorf("checkpoint node arrays disagree: %d/%d/%d/%d/%d",
			n, len(d.Texts), len(d.Parents), len(d.Starts), len(d.Ends))
	}
	specs := make([]xmltree.NodeSpec, n)
	for i := 0; i < n; i++ {
		specs[i] = xmltree.NodeSpec{
			Label:  d.Labels[i],
			Text:   d.Texts[i],
			Parent: int(d.Parents[i]),
			Start:  int(d.Starts[i]),
			End:    int(d.Ends[i]),
		}
	}
	doc, err := xmltree.Assemble(specs, d.NumBase)
	if err != nil {
		return nil, &FormatError{Msg: "checkpoint document: " + err.Error(), Err: err}
	}
	snap, err := d.Index.Expand()
	if err != nil {
		return nil, &FormatError{Msg: "checkpoint index: " + err.Error(), Err: err}
	}
	ix, err := index.FromSnapshot(doc, snap)
	if err != nil {
		return nil, &FormatError{Msg: "checkpoint index disagrees with document: " + err.Error(), Err: err}
	}
	ix.SetEpoch(d.Epoch)
	ix.Install()
	return &Checkpoint{Epoch: d.Epoch, Doc: doc, Index: ix}, nil
}

// SaveCheckpointFile atomically writes a checkpoint blob to path via a
// temporary file, fsync, and rename — a crash leaves either the old
// checkpoint or the new one, never a torn hybrid.
func SaveCheckpointFile(path string, doc *xmltree.Document, ix *index.Index, epoch uint64) error {
	if err := hookWriteFile(path); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	err = SaveCheckpoint(f, doc, ix, epoch)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile reads the checkpoint blob at path. A missing file
// returns (nil, nil): a shard that has never been checkpointed replays
// its full log over the pristine document instead.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return ck, nil
}
