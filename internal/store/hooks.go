package store

import "sync/atomic"

// Hooks intercept the store's file I/O for fault injection — the chaos
// suites (driven by internal/fault) wire them to simulate disk errors and
// crash-torn writes without build tags or filesystem tricks. Production
// code leaves them uninstalled; the cost of the probe is one atomic load
// per file operation.
type Hooks struct {
	// AppendFrame is consulted with the target path and the encoded
	// edit-record frame before AppendEditRecordFile writes it. Returning
	// (len(frame), nil) passes. Returning an error with keep == 0 injects
	// a clean failure: nothing is written and the append fails as a disk
	// error would. Returning an error with keep > 0 injects a torn write:
	// only the first keep bytes land on disk and the failure path skips
	// its truncate repair — exactly the state a crash mid-write leaves,
	// which RecoverEditLogFile must clean up before the next append.
	AppendFrame func(path string, frame []byte) (keep int, err error)
	// WriteFile is consulted with the target path before an atomic
	// replace (WriteEditLogFile, SaveCheckpointFile); an error aborts the
	// operation before the temporary file is created.
	WriteFile func(path string) error
}

var hooks atomic.Pointer[Hooks]

// SetHooks installs h as the store's I/O hooks; nil uninstalls. Intended
// for tests only — callers must uninstall before the test ends.
func SetHooks(h *Hooks) { hooks.Store(h) }

// hookAppendFrame applies the AppendFrame hook; keep is only meaningful
// when err != nil.
func hookAppendFrame(path string, frame []byte) (keep int, err error) {
	if h := hooks.Load(); h != nil && h.AppendFrame != nil {
		return h.AppendFrame(path, frame)
	}
	return len(frame), nil
}

// hookWriteFile applies the WriteFile hook.
func hookWriteFile(path string) error {
	if h := hooks.Load(); h != nil && h.WriteFile != nil {
		return h.WriteFile(path)
	}
	return nil
}
