package store

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func testCatalog() *Catalog {
	return &Catalog{Entries: []CatalogEntry{
		{Name: "orders", Dataset: "D7", Mappings: 100, DocNodes: 3473, DocSeed: 42, Tau: 0.2},
		{Name: "small", Dataset: "D1", Mappings: 20, DocNodes: 600, DocSeed: 7},
		{Name: "frozen", SetPath: "blobs/frozen.set", DocPath: "blobs/frozen.xml", Tau: 0.35},
	}}
}

// TestCatalogGoldenRoundTrip: write → read → deep-equal, and the encoded
// bytes must be stable across two saves of the same manifest (so manifests
// can be content-addressed or diffed).
func TestCatalogGoldenRoundTrip(t *testing.T) {
	want := testCatalog()
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, want); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := SaveCatalog(&buf2, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("two saves of the same catalog produced different bytes")
	}
	got, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestCatalogCorruptedHeader: flipping bytes in the magic or header region
// must yield a typed *FormatError, never a panic.
func TestCatalogCorruptedHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, testCatalog()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":                 {},
		"short magic":           good[:3],
		"flipped magic":         append([]byte("YMATCH1\n"), good[len(magic):]...),
		"truncated after magic": good[:len(magic)+2],
		"garbage header":        append([]byte(magic), bytes.Repeat([]byte{0xff}, 32)...),
	}
	for name, data := range cases {
		_, err := LoadCatalog(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: load succeeded", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not a *FormatError", name, err, err)
		}
	}
	// Wrong kind: a mapping-set blob is not a catalog.
	if _, err := LoadCatalog(bytes.NewReader(wrongKindBlob(t))); err == nil {
		t.Error("loading a non-catalog blob as catalog succeeded")
	} else {
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("wrong kind: error %v is not a *FormatError", err)
		}
	}
}

// wrongKindBlob builds a valid blob of a different kind.
func wrongKindBlob(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHeader(&buf, "mappingset"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// failAfterReader yields n good bytes, then fails like a flaky device.
type failAfterReader struct {
	r io.Reader
	n int
}

func (f *failAfterReader) Read(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("device hiccup")
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	n, err := f.r.Read(p)
	f.n -= n
	return n, err
}

// TestErrorClassification: truncation is corruption (*FormatError, with
// the io sentinel preserved on the chain); a genuine read failure — at
// byte 0, mid-magic, or mid-payload — is never classified as corruption.
func TestErrorClassification(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, testCatalog()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	_, err := LoadCatalog(bytes.NewReader(good[:3]))
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("truncated blob: error %v is not a *FormatError", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated blob: %v does not preserve io.ErrUnexpectedEOF on the chain", err)
	}
	// Read failures at various offsets: before the magic, inside it, and
	// deep inside the gob payload.
	for _, n := range []int{0, 3, len(magic) + 5, len(good) - 4} {
		_, err = LoadCatalog(&failAfterReader{r: bytes.NewReader(good), n: n})
		if err == nil {
			t.Fatalf("read failure after %d bytes: load succeeded", n)
		}
		if errors.As(err, &fe) {
			t.Errorf("read failure after %d bytes misclassified as corruption: %v", n, err)
		}
	}
}

func TestCatalogValidation(t *testing.T) {
	cases := map[string]*Catalog{
		"no entries":     {},
		"unnamed":        {Entries: []CatalogEntry{{Dataset: "D1"}}},
		"duplicate name": {Entries: []CatalogEntry{{Name: "a", Dataset: "D1"}, {Name: "a", Dataset: "D2"}}},
		"no source":      {Entries: []CatalogEntry{{Name: "a"}}},
		"two sources":    {Entries: []CatalogEntry{{Name: "a", Dataset: "D1", SetPath: "x.set"}}},
		"bad tau":        {Entries: []CatalogEntry{{Name: "a", Dataset: "D1", Tau: 1.5}}},
	}
	for name, c := range cases {
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: validated", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a *FormatError", name, err)
		}
		if err := SaveCatalog(&bytes.Buffer{}, c); err == nil {
			t.Errorf("%s: SaveCatalog accepted invalid catalog", name)
		}
	}
}
