// Package xmatch reproduces "Managing Uncertainty of XML Schema Matching"
// (Cheng, Gong, Cheung, ICDE 2010) as a Go library: possible-mapping
// generation from scored schema matchings (Murty ranking and the paper's
// partition-based divide-and-conquer), the block-tree compact
// representation of possible mappings, and probabilistic twig query (PTQ)
// evaluation, including top-k PTQ.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map and the engine architecture); internal/engine wraps the sequential
// evaluators of internal/core in a concurrent engine — worker pool, batched
// multi-query API, prepared-query cache — that returns byte-identical
// results at any worker count. cmd/experiments regenerates every table and
// figure of the paper's evaluation plus an engine scalability experiment,
// and bench_test.go in this package provides testing.B benchmarks mirroring
// each experiment, including paired sequential-vs-parallel PTQ benchmarks.
package xmatch
