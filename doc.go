// Package xmatch reproduces "Managing Uncertainty of XML Schema Matching"
// (Cheng, Gong, Cheung, ICDE 2010) as a Go library: possible-mapping
// generation from scored schema matchings (Murty ranking and the paper's
// partition-based divide-and-conquer), the block-tree compact
// representation of possible mappings, and probabilistic twig query (PTQ)
// evaluation, including top-k PTQ.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); cmd/experiments regenerates every table and figure of the paper's
// evaluation, and bench_test.go in this package provides testing.B
// benchmarks mirroring each experiment.
package xmatch
