// Package xmatch reproduces "Managing Uncertainty of XML Schema Matching"
// (Cheng, Gong, Cheung, ICDE 2010) as a Go library: possible-mapping
// generation from scored schema matchings (Murty ranking and the paper's
// partition-based divide-and-conquer), the block-tree compact
// representation of possible mappings, and probabilistic twig query (PTQ)
// evaluation, including top-k PTQ.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map and the engine architecture); internal/engine wraps the sequential
// evaluators of internal/core in a concurrent engine — worker pool, batched
// multi-query API, prepared-query cache, per-request Sub budgets — that
// returns byte-identical results at any worker count. cmd/experiments
// regenerates every table and figure of the paper's evaluation plus an
// engine scalability experiment, and bench_test.go in this package provides
// testing.B benchmarks mirroring each experiment, including paired
// sequential-vs-parallel PTQ benchmarks.
//
// The xmatchd daemon (cmd/xmatchd over internal/server) serves a
// multi-tenant catalog of prepared datasets over HTTP/JSON:
//
//	xmatchd -datasets D1,D7                # serve built-in workloads
//	curl -s localhost:8777/v1/query \
//	  -d '{"dataset":"D7","pattern":"Order//EMail","mode":"topk","k":5}'
//	xmatch query -remote http://localhost:8777 -d D7 -q 'Order//EMail'
//
// Catalogs load from store manifests (xmatchd -manifest catalog.xm,
// authored with -write-manifest) or built-in dataset IDs, hot-reload via
// POST /v1/admin/reload, and expose health and stats at /healthz and
// /statsz. Every response's results decode byte-identically to sequential
// internal/core evaluation — the engine's differential guarantee holds
// over the wire.
package xmatch
